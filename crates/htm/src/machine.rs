//! The transactional memory controller.
//!
//! [`HtmMachine`] is the single point through which simulated threads touch
//! memory. It owns the functional memory, the timing model, the per-core
//! transaction descriptors and the pluggable version manager, and
//! implements the pieces every compared scheme shares:
//!
//! * **Eager conflict detection** — an access that needs a coherence
//!   request is checked against every other core's read/write signature
//!   (LogTM-SE's conservative summary behaviour); a hit produces a NACK.
//! * **Stall policy with possible-cycle deadlock avoidance** — NACKed
//!   requesters retry; a transaction that has NACKed an older transaction
//!   sets its `possible_cycle` flag and aborts itself if it is then NACKed
//!   by an older transaction (the LogTM rule).
//! * **Isolation windows** — a transaction keeps defending its sets while
//!   `Aborting` or `Committing`; how long those windows last is exactly
//!   what distinguishes the version managers.
//! * **Lazy mode (DynTM)** — lazy transactions skip eager checks; commit
//!   arbitrates on a chip-wide token, validates against every live
//!   signature, dooms conflicting lazy transactions, and loses to eager
//!   owners.
//! * **Strong isolation** — non-transactional accesses run the same
//!   resolution and conflict checks.

use crate::shadow::ShadowOracle;
use crate::tx::{TxState, TxStatus};
use crate::vm::{LoadTarget, StoreTarget, VersionManager, VmEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use suv_coherence::{AccessKind, MemorySystem};
use suv_mem::Memory;
use suv_trace::{TraceEvent, Tracer};
use suv_types::{
    line_of, word_of, Addr, CheckLevel, CoreId, Cycle, LineAddr, MachineConfig, OverflowStats,
    TxSite, TxStats,
};

/// Outcome of a memory access through the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The access completed.
    Done {
        /// Loaded value (0 for stores).
        value: u64,
        /// Cycles consumed.
        latency: Cycle,
    },
    /// The access was NACKed by `nacker`'s transaction; the requester
    /// should stall and retry, or abort when `must_abort` is set
    /// (possible-cycle rule).
    Nacked { nacker: CoreId, latency: Cycle, must_abort: bool },
    /// The core's transaction was doomed by a lazy committer and must
    /// abort before doing anything else.
    MustAbort { latency: Cycle },
    /// The version manager ran out of capacity for this store (redirect
    /// pool dry, undo log full, write buffer full). The transaction must
    /// abort; the sim layer's escalation ladder decides how to retry.
    Overflow { latency: Cycle },
}

/// Outcome of a commit request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Committed. `committing` is the portion of `latency` attributable to
    /// lazy arbitration + merge (the Figure 9 "Committing" component).
    Committed { latency: Cycle, committing: Cycle },
    /// Commit-time validation failed (or the transaction was doomed); the
    /// caller must abort.
    MustAbort { latency: Cycle },
}

/// The HTM controller.
pub struct HtmMachine {
    cfg: MachineConfig,
    /// Functional memory (public for workload setup code).
    pub mem: Memory,
    /// Timing model (public for tests that inspect cache state).
    pub sys: MemorySystem,
    txs: Vec<TxState>,
    vm: Box<dyn VersionManager>,
    tx_stats: Vec<TxStats>,
    overflow: OverflowStats,
    /// Chip-wide lazy-commit token: free-at time.
    commit_token_free: Cycle,
    /// Earliest `until` of any open Aborting/Committing isolation window
    /// (`u64::MAX` when none): [`HtmMachine::settle`] is a no-op before
    /// this instant, so the per-operation settle scan is skipped on the
    /// vast majority of accesses.
    settle_due: Cycle,
    rngs: Vec<StdRng>,
    /// Event/metrics sink; disabled by default (one predictable branch per
    /// emission point).
    tracer: Tracer,
    /// Shadow-memory isolation oracle (`CheckLevel::Full` only).
    shadow: Option<ShadowOracle>,
}

impl HtmMachine {
    /// Build a machine running the given version-management scheme.
    #[must_use]
    pub fn new(cfg: &MachineConfig, vm: Box<dyn VersionManager>) -> Self {
        HtmMachine {
            cfg: *cfg,
            mem: Memory::new(),
            sys: MemorySystem::new(cfg),
            txs: (0..cfg.n_cores)
                .map(|_| {
                    TxState::with_mode(
                        cfg.htm.signature_bits,
                        cfg.htm.signature_hashes,
                        cfg.htm.perfect_signatures,
                    )
                })
                .collect(),
            vm,
            tx_stats: vec![TxStats::default(); cfg.n_cores],
            overflow: OverflowStats::default(),
            commit_token_free: 0,
            settle_due: u64::MAX,
            rngs: (0..cfg.n_cores).map(|c| StdRng::seed_from_u64(0x00BA_C0FF + c as u64)).collect(),
            tracer: Tracer::disabled(),
            shadow: (cfg.check >= CheckLevel::Full).then(|| ShadowOracle::new(cfg.n_cores)),
        }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Install a tracer (replacing the default disabled one).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Borrow the tracer (e.g. to check [`Tracer::on`] or read metrics).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Take the tracer out for finishing, leaving a disabled one behind.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::replace(&mut self.tracer, Tracer::disabled())
    }

    /// Emit an event attributed to `core` at time `t`. Hook for callers
    /// that hold the machine lock (the sim layer's barrier accounting).
    pub fn trace_emit(&mut self, t: Cycle, core: CoreId, ev: TraceEvent) {
        self.tracer.emit(t, core, ev);
    }

    /// Is `core` currently inside a transaction?
    #[must_use]
    pub fn in_tx(&self, core: CoreId) -> bool {
        self.txs[core].depth > 0 && matches!(self.txs[core].status, TxStatus::Active)
    }

    /// Current nesting depth of `core`'s transaction.
    #[must_use]
    pub fn depth(&self, core: CoreId) -> usize {
        self.txs[core].depth
    }

    /// Close expired isolation windows. Called at the head of every
    /// operation; correctness relies on the engine dispatching operations
    /// in global time order.
    fn settle(&mut self, now: Cycle) {
        if now < self.settle_due {
            return; // no isolation window can have expired yet
        }
        let mut due = u64::MAX;
        for t in &mut self.txs {
            match t.status {
                TxStatus::Aborting { until } => {
                    if now >= until {
                        t.clear_attempt();
                    } else {
                        due = due.min(until);
                    }
                }
                TxStatus::Committing { until } => {
                    if now >= until {
                        t.clear_dynamic();
                    } else {
                        due = due.min(until);
                    }
                }
                _ => {}
            }
        }
        self.settle_due = due;
    }

    /// Find a defender that conflicts with `requester`'s access to `line`.
    /// Returns the lowest-numbered conflicting core.
    fn find_conflict(
        &self,
        now: Cycle,
        requester: CoreId,
        line: LineAddr,
        is_write: bool,
    ) -> Option<CoreId> {
        for (c, t) in self.txs.iter().enumerate() {
            if c == requester || !t.isolation_live(now) {
                continue;
            }
            // Active lazy transactions are invisible until they commit;
            // aborting/committing windows always defend.
            let defends = match t.status {
                TxStatus::Active => !t.lazy,
                TxStatus::Aborting { .. } | TxStatus::Committing { .. } => true,
                TxStatus::Idle => false,
            };
            if !defends {
                continue;
            }
            let hit =
                if is_write { t.rsig_hit(line) || t.wsig_hit(line) } else { t.wsig_hit(line) };
            if hit {
                return Some(c);
            }
        }
        None
    }

    /// A store that acquires exclusive ownership of `line` dooms every
    /// *lazy* active transaction that has the line in its read or write
    /// set: lazy transactions hold no ownership and lose against eager
    /// writers (DynTM's mixed-mode rule). Without this, a lazy transaction
    /// could commit stale reads over an eagerly-committed update.
    fn doom_lazy_conflictors(&mut self, now: Cycle, requester: CoreId, line: LineAddr) {
        for c in 0..self.txs.len() {
            if c == requester {
                continue;
            }
            let t = &self.txs[c];
            if t.lazy
                && matches!(t.status, TxStatus::Active)
                && t.isolation_live(now)
                && (t.rsig_hit(line) || t.wsig_hit(line))
            {
                self.txs[c].doomed = true;
            }
        }
    }

    /// Record a NACK and evaluate the possible-cycle rule. Returns
    /// `must_abort` for the requester.
    fn note_nack(&mut self, requester: CoreId, nacker: CoreId, requester_in_tx: bool) -> bool {
        self.tx_stats[requester].nacks_received += 1;
        self.tx_stats[nacker].nacks_sent += 1;
        if !requester_in_tx {
            return false; // non-transactional requesters just stall
        }
        if self.txs[nacker].irrevocable {
            // An irrevocable defender wins every conflict outright: the
            // requester aborts immediately instead of stalling, so the
            // irrevocable owner can never participate in a dependence
            // cycle and is guaranteed to commit.
            return true;
        }
        let req_ts = self.txs[requester].timestamp;
        let nack_ts = self.txs[nacker].timestamp;
        if req_ts < nack_ts {
            // The defender NACKed an older transaction: potential cycle.
            self.txs[nacker].possible_cycle = true;
        }
        let must_abort = nack_ts < req_ts
            && self.txs[requester].possible_cycle
            // An irrevocable requester never aborts; it stalls until the
            // defender yields (which the rule above guarantees it will).
            && !self.txs[requester].irrevocable;
        if must_abort {
            self.tx_stats[requester].cycle_aborts += 1;
        }
        must_abort
    }

    /// Trace a NACK: the NACK proper is attributed to the defender and the
    /// resulting stall to the requester, so per-core `nack` event counts
    /// reconcile with `nacks_sent` and `stall` counts with
    /// `nacks_received`.
    fn trace_nack(
        &mut self,
        now: Cycle,
        requester: CoreId,
        nacker: CoreId,
        line: LineAddr,
        stall: Cycle,
        must_abort: bool,
    ) {
        self.tracer.emit(now, nacker, TraceEvent::Nack { requester: requester as u32, must_abort });
        self.tracer.emit(now, requester, TraceEvent::Stall { line, cycles: stall });
    }

    /// Begin (or nest) a transaction. Returns the begin latency.
    pub fn begin_tx(&mut self, now: Cycle, core: CoreId, site: TxSite) -> Cycle {
        self.begin_tx_mode(now, core, site, false)
    }

    /// Begin the outermost transaction in irrevocable serialized mode: the
    /// caller must already hold the chip-wide irrevocable token (the
    /// scheduler enforces single ownership; INV-11 re-checks it here).
    /// Irrevocable transactions always run eager, are made the oldest
    /// transaction in the system (so the possible-cycle rule resolves
    /// every conflict in their favour), and may bypass the version
    /// manager's capacity limits.
    pub fn begin_tx_irrevocable(&mut self, now: Cycle, core: CoreId, site: TxSite) -> Cycle {
        self.begin_tx_mode(now, core, site, true)
    }

    fn begin_tx_mode(
        &mut self,
        now: Cycle,
        core: CoreId,
        site: TxSite,
        irrevocable: bool,
    ) -> Cycle {
        self.settle(now);
        if self.txs[core].depth > 0 {
            assert!(
                self.txs[core].depth < self.cfg.htm.max_nest_depth,
                "nesting depth limit exceeded"
            );
            self.txs[core].depth += 1;
            if self.cfg.htm.partial_nesting
                && !self.txs[core].lazy
                && self.vm.supports_partial_abort()
            {
                // LogTM-Nested stacked frame: per-level signatures plus a
                // version-manager watermark, enabling partial abort.
                self.txs[core].push_frame();
                if let Some(s) = &mut self.shadow {
                    s.push_level(core);
                }
                let mut env =
                    VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
                return 2 + self.vm.begin_level(&mut env, core);
            }
            return 1; // flattened (subsumed) nesting
        }
        // Irrevocable mode forces eager conflict detection: the guarantee
        // rests on the NACK/possible-cycle machinery resolving conflicts
        // in the oldest transaction's favour.
        let lazy = if irrevocable { false } else { self.vm.choose_mode(core, site) };
        if irrevocable {
            if self.cfg.check >= CheckLevel::Cheap {
                if let Some(other) = (0..self.txs.len()).find(|&c| self.txs[c].irrevocable) {
                    panic!(
                        "INV-11 violated at t={now}: core {core} begins irrevocable \
                         while core {other} is irrevocable"
                    );
                }
            }
            self.vm.set_irrevocable(core, true);
        }
        let t = &mut self.txs[core];
        debug_assert_eq!(t.status, TxStatus::Idle, "core {core} beginning while busy");
        t.status = TxStatus::Active;
        t.depth = 1;
        t.site = site;
        t.lazy = lazy;
        t.doomed = false;
        t.irrevocable = irrevocable;
        t.begin_time = now;
        if irrevocable {
            // Oldest possible age: core ids are < 2^8, so this sorts below
            // every normal `(now << 8) | core` timestamp and the LogTM rule
            // makes every opponent in a dependence cycle yield.
            t.timestamp = core as u64;
        } else if t.timestamp == u64::MAX {
            // Age is assigned once per dynamic transaction and kept across
            // retries so the oldest eventually wins.
            t.timestamp = (now << 8) | core as u64;
        }
        self.tracer.emit(now, core, TraceEvent::TxBegin { site: site.0, lazy });
        if let Some(s) = &mut self.shadow {
            s.begin(core);
        }
        let mut env =
            VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
        self.cfg.htm.checkpoint_cycles + self.vm.begin(&mut env, core, lazy)
    }

    /// Transactional load.
    pub fn tx_load(&mut self, now: Cycle, core: CoreId, addr: Addr) -> Access {
        self.settle(now);
        debug_assert!(self.in_tx(core), "tx_load outside a transaction");
        if self.txs[core].doomed {
            return Access::MustAbort { latency: 1 };
        }
        let line = line_of(addr);
        let mut env =
            VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
        let (target, res_lat) = self.vm.resolve_load(&mut env, core, addr, true);
        let (value, latency) = match target {
            LoadTarget::Value(v) => (v, res_lat + self.cfg.l1.latency),
            LoadTarget::Mem(phys) => {
                // Coherence and caching always key on the ORIGINAL address
                // (SUV's "a load/(store) that misses on block B generates a
                // GETS(B)/(GETM(B))"); only the functional data location is
                // redirected.
                if !self.sys.has_permission(core, addr, AccessKind::Load) {
                    if let Some(nacker) = self.find_conflict(now, core, line, false) {
                        let must_abort = self.note_nack(core, nacker, true);
                        let latency =
                            res_lat + self.sys.nack_latency(now + res_lat, core, line, nacker);
                        self.trace_nack(now, core, nacker, line, latency, must_abort);
                        return Access::Nacked { nacker, latency, must_abort };
                    }
                    let f = self.sys.fill_traced(
                        now + res_lat,
                        core,
                        addr,
                        AccessKind::Load,
                        &mut self.tracer,
                    );
                    if let Some(ev) = f.evicted {
                        self.vm.on_eviction(core, &ev);
                        if ev.speculative {
                            self.txs[core].overflowed_l1 = true;
                            self.overflow.speculative_evictions += 1;
                            self.tracer.emit(now, core, TraceEvent::SpecEviction { line: ev.line });
                        }
                    }
                    (self.mem.read_word(word_of(phys)), res_lat + f.latency)
                } else {
                    let hit = self.sys.access_hit(core, addr, AccessKind::Load);
                    (self.mem.read_word(word_of(phys)), res_lat + hit)
                }
            }
        };
        self.txs[core].note_read(line);
        self.tx_stats[core].tx_loads += 1;
        self.tracer.emit(now, core, TraceEvent::TxRead { line });
        if let Some(s) = &self.shadow {
            if let Err(v) = s.check_tx_load(core, addr, value) {
                panic!("isolation violated at t={now}: {v}");
            }
        }
        Access::Done { value, latency }
    }

    /// Transactional store.
    pub fn tx_store(&mut self, now: Cycle, core: CoreId, addr: Addr, value: u64) -> Access {
        self.settle(now);
        debug_assert!(self.in_tx(core), "tx_store outside a transaction");
        if self.txs[core].doomed {
            return Access::MustAbort { latency: 1 };
        }
        let line = line_of(addr);
        // Eager conflict check before any bookkeeping, unless this
        // transaction already owns the line (exact write-set check: a
        // signature false positive must not skip the check). Lazy
        // transactions defer all conflicts to commit.
        let owned = self.txs[core].writes_contain(line);
        if !self.txs[core].lazy && !owned {
            if let Some(nacker) = self.find_conflict(now, core, line, true) {
                let must_abort = self.note_nack(core, nacker, true);
                let latency = self.sys.nack_latency(now, core, line, nacker);
                self.trace_nack(now, core, nacker, line, latency, must_abort);
                return Access::Nacked { nacker, latency, must_abort };
            }
            self.doom_lazy_conflictors(now, core, line);
        }
        let mut env =
            VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
        let (target, vm_lat) = self.vm.prepare_store(&mut env, core, addr, value, true);
        let lazy = self.txs[core].lazy;
        let latency = match target {
            StoreTarget::Overflow => {
                // Capacity exhausted before any bookkeeping: the write
                // signature and write set were not touched, so the abort
                // leaks nothing (INV-12). The caller aborts and climbs the
                // escalation ladder.
                self.tx_stats[core].overflow_aborts += 1;
                self.tracer.emit(now, core, TraceEvent::OverflowAbort { line });
                return Access::Overflow { latency: vm_lat + 1 };
            }
            StoreTarget::Buffered => vm_lat + self.cfg.l1.latency,
            StoreTarget::Mem(phys) if lazy => {
                // Lazy conflict detection: the store stays private until
                // commit — no ownership request, no invalidations. With
                // SUV backing the lazy mode, the functional write to the
                // (redirected) location *is* the final data movement; the
                // commit merely flips the entry.
                self.mem.write_word(word_of(phys), value);
                vm_lat + self.cfg.l1.latency
            }
            StoreTarget::Mem(phys) => {
                // As with loads: GETM targets the original address; only
                // the functional write lands at the (possibly redirected)
                // location.
                let lat = if self.sys.has_permission(core, addr, AccessKind::Store) {
                    self.sys.access_hit(core, addr, AccessKind::Store)
                } else {
                    let f = self.sys.fill_traced(
                        now + vm_lat,
                        core,
                        addr,
                        AccessKind::Store,
                        &mut self.tracer,
                    );
                    if let Some(ev) = f.evicted {
                        self.vm.on_eviction(core, &ev);
                        if ev.speculative {
                            self.txs[core].overflowed_l1 = true;
                            self.overflow.speculative_evictions += 1;
                            self.tracer.emit(now, core, TraceEvent::SpecEviction { line: ev.line });
                        }
                    }
                    f.latency
                };
                self.mem.write_word(word_of(phys), value);
                self.sys.mark_speculative(core, addr);
                vm_lat + lat
            }
        };
        self.txs[core].note_write(line);
        self.tx_stats[core].tx_stores += 1;
        self.tracer.emit(now, core, TraceEvent::TxWrite { line });
        if let Some(s) = &mut self.shadow {
            s.record_store(core, addr, value);
        }
        Access::Done { value: 0, latency }
    }

    /// Commit the core's transaction (or pop one nesting level).
    pub fn commit_tx(&mut self, now: Cycle, core: CoreId) -> CommitOutcome {
        self.settle(now);
        debug_assert!(self.in_tx(core), "commit outside a transaction");
        if self.txs[core].depth > 1 {
            self.txs[core].depth -= 1;
            if !self.txs[core].frames.is_empty() {
                self.txs[core].merge_top_frame();
                if let Some(s) = &mut self.shadow {
                    s.merge_level(core);
                }
                let mut env =
                    VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
                let lat = 1 + self.vm.commit_level(&mut env, core);
                return CommitOutcome::Committed { latency: lat, committing: 0 };
            }
            return CommitOutcome::Committed { latency: 1, committing: 0 };
        }
        if self.txs[core].doomed {
            return CommitOutcome::MustAbort { latency: 1 };
        }
        if self.txs[core].lazy {
            self.commit_lazy(now, core)
        } else {
            self.commit_eager(now, core)
        }
    }

    fn commit_eager(&mut self, now: Cycle, core: CoreId) -> CommitOutcome {
        let mut env =
            VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
        let lat = self.vm.commit(&mut env, core);
        self.tracer.emit(now, core, TraceEvent::TxCommit { window: lat, committing: 0 });
        self.finish_tx(now, core, true, lat);
        CommitOutcome::Committed { latency: lat, committing: 0 }
    }

    fn commit_lazy(&mut self, now: Cycle, core: CoreId) -> CommitOutcome {
        // Arbitrate for the chip-wide commit token.
        let start = now.max(self.commit_token_free) + self.cfg.dyntm.commit_arbitration_cycles;
        let wait = start - now;
        self.tracer.emit(now, core, TraceEvent::CommitArbitration { wait });
        // Validate: the committer's write set against every live
        // transaction. Eager transactions own their lines — the committer
        // loses. Conflicting lazy transactions are doomed.
        let write_set: Vec<LineAddr> = self.txs[core].all_write_lines();
        let mut doom: Vec<CoreId> = Vec::new();
        for (c, t) in self.txs.iter().enumerate() {
            if c == core || !t.isolation_live(start) {
                continue;
            }
            let conflicted = write_set.iter().any(|l| t.rsig_hit(*l) || t.wsig_hit(*l));
            if !conflicted {
                continue;
            }
            let defender_wins = match t.status {
                TxStatus::Active => !t.lazy,
                _ => true, // committing/aborting windows always win
            };
            if defender_wins {
                self.tx_stats[core].lazy_validation_aborts += 1;
                return CommitOutcome::MustAbort { latency: wait };
            }
            doom.push(c);
        }
        for c in doom {
            self.txs[c].doomed = true;
        }
        // Merge (write-buffer drain, or an SUV flash when SUV backs the
        // lazy mode), holding the token.
        let mut env =
            VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now: start };
        let merge = self.vm.commit(&mut env, core);
        self.commit_token_free = start + merge;
        let total = wait + merge;
        self.tracer.emit(now, core, TraceEvent::TxCommit { window: total, committing: total });
        self.finish_tx(now, core, true, total);
        CommitOutcome::Committed { latency: total, committing: total }
    }

    /// Partially abort the innermost nested level (LogTM-Nested partial
    /// abort). Returns the rollback duration, or `None` when no nested
    /// frame exists (or the transaction is doomed) and a full abort is
    /// required instead. The caller must pair this with the failed
    /// `begin_tx` level.
    pub fn abort_nested(&mut self, now: Cycle, core: CoreId) -> Option<Cycle> {
        self.settle(now);
        let t = &mut self.txs[core];
        if t.depth <= 1 || t.frames.is_empty() || t.doomed {
            return None;
        }
        t.depth -= 1;
        t.drop_top_frame();
        if let Some(s) = &mut self.shadow {
            s.drop_level(core);
        }
        let mut env =
            VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
        Some(self.vm.abort_level(&mut env, core) + 1)
    }

    /// Abort the core's transaction. Returns the abort (repair) duration;
    /// the isolation window stays open that long.
    pub fn abort_tx(&mut self, now: Cycle, core: CoreId) -> Cycle {
        self.settle(now);
        debug_assert!(self.txs[core].depth > 0, "abort outside a transaction");
        assert!(
            !self.txs[core].irrevocable,
            "irrevocable transaction on core {core} aborted at t={now} — the escalation \
             ladder's commit guarantee is broken"
        );
        let mut env =
            VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
        let lat = self.vm.abort(&mut env, core) + self.cfg.htm.restore_cycles;
        self.tracer.emit(now, core, TraceEvent::TxAbort { window: lat });
        self.finish_tx(now, core, false, lat);
        lat
    }

    /// Common end-of-transaction bookkeeping.
    fn finish_tx(&mut self, now: Cycle, core: CoreId, committed: bool, window: Cycle) {
        // Overflow accounting (Table V).
        if self.txs[core].overflowed_l1 {
            self.overflow.l1_data_overflow_txns += 1;
        }
        let (rt_l1, rt_mem) = self.vm.take_rt_overflow(core);
        if rt_l1 {
            self.overflow.rt_l1_overflow_txns += 1;
        }
        if rt_mem {
            self.overflow.rt_full_overflow_txns += 1;
        }
        let st = &mut self.tx_stats[core];
        st.max_write_set = st.max_write_set.max(self.txs[core].all_write_lines().len() as u64);
        if committed {
            st.commits += 1;
            st.committed_tx_cycles += now + window - self.txs[core].begin_time;
            if self.txs[core].irrevocable {
                self.tx_stats[core].irrevocable_commits += 1;
                self.tracer.emit(now, core, TraceEvent::IrrevocableCommit { window });
                self.vm.set_irrevocable(core, false);
                // Drop the flag with the commit, not with the isolation
                // window: the successor may begin irrevocable (the
                // scheduler token is already released by then) and a stale
                // flag here would make `note_nack` treat this *committed*
                // transaction as a second irrevocable owner — telling the
                // new owner to abort and breaking the commit guarantee.
                self.txs[core].irrevocable = false;
            }
            self.txs[core].status = TxStatus::Committing { until: now + window };
        } else {
            st.aborts += 1;
            self.txs[core].attempts += 1;
            self.txs[core].status = TxStatus::Aborting { until: now + window };
        }
        self.settle_due = self.settle_due.min(now + window);
        self.txs[core].depth = 0;
        self.sys.clear_speculative(core);
        let site = self.txs[core].site;
        self.vm.tx_finished(core, site, committed);
        if let Some(s) = &mut self.shadow {
            s.finish(core, committed);
        }
        // Transaction-boundary invariant audits (never charged cycles).
        if self.cfg.check >= CheckLevel::Cheap {
            let owners = self.txs.iter().filter(|t| t.irrevocable).count();
            assert!(
                owners <= 1,
                "INV-11 violated at tx end (t={now}): {owners} irrevocable owners"
            );
            if let Err(v) = self.vm.check_invariants() {
                panic!("version-manager invariant violated at tx end (t={now}): {v}");
            }
            if self.cfg.check >= CheckLevel::Full {
                if let Err(v) = self.sys.check_invariants() {
                    panic!("coherence invariant violated at tx end (t={now}): {v}");
                }
            }
        }
    }

    /// Record an escalation of `core`'s next attempt to irrevocable mode
    /// (reason codes: 0 = overflow retry budget spent, 1 = abort-count
    /// watchdog, 2 = starvation-cycles watchdog). Called by the sim layer
    /// when the ladder or the watchdog fires.
    pub fn note_escalation(&mut self, now: Cycle, core: CoreId, reason: u32) {
        self.tx_stats[core].watchdog_escalations += 1;
        self.tracer.emit(now, core, TraceEvent::WatchdogEscalation { reason });
    }

    /// Consecutive aborts of `core`'s current dynamic transaction (the
    /// watchdog's abort-count signal).
    #[must_use]
    pub fn tx_attempts(&self, core: CoreId) -> u32 {
        self.txs[core].attempts
    }

    /// Randomized exponential backoff after an abort, in cycles.
    pub fn backoff_cycles(&mut self, now: Cycle, core: CoreId) -> Cycle {
        let b = self.cfg.htm.backoff;
        let attempts = self.txs[core].attempts.min(16);
        let window = (b.base * b.multiplier.pow(attempts.saturating_sub(1))).min(b.cap);
        let cycles = self.rngs[core].random_range(1..=window.max(1));
        self.tracer.emit(now, core, TraceEvent::Backoff { cycles });
        cycles
    }

    /// Non-transactional load (strong isolation: the same resolution and
    /// conflict checks apply).
    pub fn nontx_load(&mut self, now: Cycle, core: CoreId, addr: Addr) -> Access {
        self.settle(now);
        let line = line_of(addr);
        let mut env =
            VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
        let (target, res_lat) = self.vm.resolve_load(&mut env, core, addr, false);
        let phys = match target {
            LoadTarget::Mem(p) => p,
            LoadTarget::Value(v) => {
                if let Some(s) = &self.shadow {
                    if let Err(e) = s.check_nontx_load(core, addr, v) {
                        panic!("strong isolation violated at t={now}: {e}");
                    }
                }
                return Access::Done { value: v, latency: res_lat + 1 };
            }
        };
        let (value, latency) = if !self.sys.has_permission(core, addr, AccessKind::Load) {
            if let Some(nacker) = self.find_conflict(now, core, line, false) {
                let must_abort = self.note_nack(core, nacker, false);
                let latency = res_lat + self.sys.nack_latency(now + res_lat, core, line, nacker);
                self.trace_nack(now, core, nacker, line, latency, must_abort);
                return Access::Nacked { nacker, latency, must_abort };
            }
            let f =
                self.sys.fill_traced(now + res_lat, core, addr, AccessKind::Load, &mut self.tracer);
            if let Some(ev) = f.evicted {
                self.vm.on_eviction(core, &ev);
            }
            (self.mem.read_word(word_of(phys)), res_lat + f.latency)
        } else {
            let hit = self.sys.access_hit(core, addr, AccessKind::Load);
            (self.mem.read_word(word_of(phys)), res_lat + hit)
        };
        if let Some(s) = &self.shadow {
            if let Err(v) = s.check_nontx_load(core, addr, value) {
                panic!("strong isolation violated at t={now}: {v}");
            }
        }
        Access::Done { value, latency }
    }

    /// Non-transactional store.
    pub fn nontx_store(&mut self, now: Cycle, core: CoreId, addr: Addr, value: u64) -> Access {
        self.settle(now);
        let line = line_of(addr);
        let mut env =
            VmEnv { mem: &mut self.mem, sys: &mut self.sys, tracer: &mut self.tracer, now };
        let (target, vm_lat) = self.vm.prepare_store(&mut env, core, addr, value, false);
        let phys = match target {
            StoreTarget::Mem(p) => p,
            StoreTarget::Buffered => unreachable!("non-transactional stores are never buffered"),
            StoreTarget::Overflow => {
                // Non-transactional stores never allocate version-manager
                // capacity (no logging, no buffering; SUV redirect-back
                // only frees slots).
                unreachable!("non-transactional store overflowed")
            }
        };
        if !self.sys.has_permission(core, addr, AccessKind::Store) {
            if let Some(nacker) = self.find_conflict(now, core, line, true) {
                let must_abort = self.note_nack(core, nacker, false);
                let latency = vm_lat + self.sys.nack_latency(now + vm_lat, core, line, nacker);
                self.trace_nack(now, core, nacker, line, latency, must_abort);
                return Access::Nacked { nacker, latency, must_abort };
            }
            self.doom_lazy_conflictors(now, core, line);
            let f =
                self.sys.fill_traced(now + vm_lat, core, addr, AccessKind::Store, &mut self.tracer);
            if let Some(ev) = f.evicted {
                self.vm.on_eviction(core, &ev);
            }
            self.mem.write_word(word_of(phys), value);
            self.shadow_nontx_store(addr, value);
            Access::Done { value: 0, latency: vm_lat + f.latency }
        } else {
            let hit = self.sys.access_hit(core, addr, AccessKind::Store);
            self.mem.write_word(word_of(phys), value);
            self.shadow_nontx_store(addr, value);
            Access::Done { value: 0, latency: vm_lat + hit }
        }
    }

    fn shadow_nontx_store(&mut self, addr: Addr, value: u64) {
        if let Some(s) = &mut self.shadow {
            s.note_nontx_store(addr, value);
        }
    }

    /// Fast setup write used by workload initialization (functional only,
    /// no timing, no isolation).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.mem.write_word(word_of(addr), value);
        self.shadow_nontx_store(addr, value);
    }

    /// Fast functional read for result verification (no timing). Resolves
    /// committed redirections through the version manager.
    pub fn peek(&mut self, addr: Addr) -> u64 {
        let mut env = VmEnv {
            mem: &mut self.mem,
            sys: &mut self.sys,
            tracer: &mut self.tracer,
            now: u64::MAX / 2,
        };
        let value = match self.vm.resolve_load(&mut env, 0, addr, false) {
            (LoadTarget::Mem(p), _) => self.mem.read_word(word_of(p)),
            (LoadTarget::Value(v), _) => v,
        };
        // With no speculative state pending, a peek must see exactly the
        // committed shadow state — the end-of-run value oracle.
        if let Some(s) = &self.shadow {
            if s.quiescent() {
                if let Err(v) = s.check_nontx_load(0, addr, value) {
                    panic!("committed state diverged from shadow: {v}");
                }
            }
        }
        value
    }

    /// Aggregated transaction statistics.
    #[must_use]
    pub fn tx_stats(&self) -> TxStats {
        let mut s = TxStats::default();
        for t in &self.tx_stats {
            s.merge(t);
        }
        s
    }

    /// Overflow statistics (Table V).
    #[must_use]
    pub fn overflow_stats(&self) -> OverflowStats {
        self.overflow
    }

    /// Borrow the version manager (for scheme-specific statistics).
    #[must_use]
    pub fn vm(&self) -> &dyn VersionManager {
        self.vm.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logtm::LogTmSe;
    use suv_types::MachineConfig;

    fn machine() -> HtmMachine {
        let cfg = MachineConfig::small_test();
        HtmMachine::new(&cfg, Box::new(LogTmSe::new(cfg.n_cores, cfg.htm)))
    }

    fn must_done(a: Access) -> (u64, Cycle) {
        match a {
            Access::Done { value, latency } => (value, latency),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn single_tx_commit_flow() {
        let mut m = machine();
        m.poke(0x100, 5);
        let mut now = 0;
        now += m.begin_tx(now, 0, TxSite(1));
        let (v, l) = must_done(m.tx_load(now, 0, 0x100));
        assert_eq!(v, 5);
        now += l;
        let (_, l) = must_done(m.tx_store(now, 0, 0x100, 6));
        now += l;
        match m.commit_tx(now, 0) {
            CommitOutcome::Committed { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(m.peek(0x100), 6);
        assert_eq!(m.tx_stats().commits, 1);
    }

    #[test]
    fn abort_restores_memory() {
        let mut m = machine();
        m.poke(0x200, 10);
        let mut now = 0;
        now += m.begin_tx(now, 0, TxSite(1));
        let (_, l) = must_done(m.tx_store(now, 0, 0x200, 99));
        now += l;
        assert_eq!(m.mem.read_word(0x200), 99, "eager update in place");
        let d = m.abort_tx(now, 0);
        assert!(d > 0);
        assert_eq!(m.peek(0x200), 10, "undo log restored the old value");
        assert_eq!(m.tx_stats().aborts, 1);
    }

    #[test]
    fn conflicting_store_is_nacked() {
        let mut m = machine();
        m.poke(0x300, 1);
        let mut t0 = 0;
        t0 += m.begin_tx(t0, 0, TxSite(1));
        let (_, l) = must_done(m.tx_load(t0, 0, 0x300));
        t0 += l;
        let _ = t0;
        // Core 1 (younger) writes the line core 0 read.
        let mut t1 = 50;
        t1 += m.begin_tx(t1, 1, TxSite(2));
        match m.tx_store(t1, 1, 0x300, 2) {
            Access::Nacked { nacker, must_abort, latency } => {
                assert_eq!(nacker, 0);
                assert!(!must_abort, "no cycle yet");
                assert!(latency > 0);
            }
            other => panic!("expected NACK, got {other:?}"),
        }
        assert_eq!(m.tx_stats().nacks_received, 1);
    }

    #[test]
    fn read_read_is_no_conflict() {
        let mut m = machine();
        m.poke(0x340, 7);
        let mut t0 = 0;
        t0 += m.begin_tx(t0, 0, TxSite(1));
        must_done(m.tx_load(t0, 0, 0x340));
        let mut t1 = 30;
        t1 += m.begin_tx(t1, 1, TxSite(2));
        let (v, _) = must_done(m.tx_load(t1, 1, 0x340));
        assert_eq!(v, 7);
    }

    #[test]
    fn possible_cycle_rule_aborts_younger() {
        let mut m = machine();
        m.poke(0x400, 0); // line A
        m.poke(0x440, 0); // line B
                          // T0 (older) reads A; T1 (younger) reads B.
        let mut t0 = 0;
        t0 += m.begin_tx(t0, 0, TxSite(1));
        let (_, l) = must_done(m.tx_load(t0, 0, 0x400));
        t0 += l;
        let mut t1 = 20;
        t1 += m.begin_tx(t1, 1, TxSite(2));
        let (_, l) = must_done(m.tx_load(t1, 1, 0x440));
        t1 += l;
        // T0 stores to B -> NACKed by T1; T1 NACKed an older tx, so its
        // possible_cycle flag is set.
        match m.tx_store(t0, 0, 0x440, 1) {
            Access::Nacked { nacker, must_abort, .. } => {
                assert_eq!(nacker, 1);
                assert!(!must_abort, "the older transaction never cycle-aborts");
            }
            other => panic!("{other:?}"),
        }
        // T1 stores to A -> NACKed by T0 (older) while flagged: must abort.
        match m.tx_store(t1, 1, 0x400, 1) {
            Access::Nacked { nacker, must_abort, .. } => {
                assert_eq!(nacker, 0);
                assert!(must_abort, "possible-cycle rule must fire");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.tx_stats().cycle_aborts, 1);
    }

    #[test]
    fn isolation_window_defends_during_abort() {
        let mut m = machine();
        m.poke(0x500, 3);
        let mut t0 = 0;
        t0 += m.begin_tx(t0, 0, TxSite(1));
        for i in 0..16u64 {
            let (_, l) = must_done(m.tx_store(t0, 0, 0x500 + i * 64, i));
            t0 += l;
        }
        let d = m.abort_tx(t0, 0);
        assert!(d > 50, "LogTM-SE abort must be slow ({d})");
        // During the abort window another core's access is still NACKed.
        let mut t1 = t0 + d / 2;
        t1 += m.begin_tx(t1, 1, TxSite(2));
        match m.tx_load(t1, 1, 0x500) {
            Access::Nacked { nacker, .. } => assert_eq!(nacker, 0),
            other => panic!("expected NACK during repair window, got {other:?}"),
        }
        // After the window closes the same access succeeds and sees the
        // restored value.
        let t2 = t0 + d + 100;
        let (v, _) = must_done(m.tx_load(t2, 1, 0x500));
        assert_eq!(v, 3);
    }

    #[test]
    fn nontx_store_respects_strong_isolation() {
        let mut m = machine();
        m.poke(0x600, 1);
        let mut t0 = 0;
        t0 += m.begin_tx(t0, 0, TxSite(1));
        must_done(m.tx_load(t0, 0, 0x600));
        // Core 1, not in a transaction, tries to write the line.
        match m.nontx_store(10, 1, 0x600, 9) {
            Access::Nacked { nacker, must_abort, .. } => {
                assert_eq!(nacker, 0);
                assert!(!must_abort);
            }
            other => panic!("strong isolation violated: {other:?}"),
        }
    }

    #[test]
    fn nested_begin_commit_flattened() {
        let mut m = machine();
        let mut now = 0;
        now += m.begin_tx(now, 0, TxSite(1));
        now += m.begin_tx(now, 0, TxSite(2));
        assert_eq!(m.depth(0), 2);
        let (_, l) = must_done(m.tx_store(now, 0, 0x700, 1));
        now += l;
        match m.commit_tx(now, 0) {
            CommitOutcome::Committed { latency, .. } => now += latency,
            other => panic!("{other:?}"),
        }
        assert_eq!(m.depth(0), 1, "inner commit pops one level");
        assert!(m.in_tx(0));
        match m.commit_tx(now, 0) {
            CommitOutcome::Committed { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(m.depth(0), 0);
        assert_eq!(m.tx_stats().commits, 1, "only the outermost commit counts");
    }

    #[test]
    fn backoff_grows_with_attempts() {
        let mut m = machine();
        m.begin_tx(0, 0, TxSite(1));
        m.abort_tx(10, 0);
        let b1: Cycle = (0..32).map(|_| m.backoff_cycles(20, 0)).max().unwrap();
        // Simulate more failed attempts.
        for i in 0..6 {
            let t = 1000 * (i + 1);
            m.begin_tx(t, 0, TxSite(1));
            m.abort_tx(t + 10, 0);
        }
        let b7: Cycle = (0..32).map(|_| m.backoff_cycles(8000, 0)).max().unwrap();
        assert!(b7 > b1, "backoff must grow ({b1} -> {b7})");
        assert!(b7 <= m.config().htm.backoff.cap);
    }

    #[test]
    fn timestamp_survives_retries() {
        let mut m = machine();
        m.begin_tx(100, 0, TxSite(1));
        let ts1 = m.txs[0].timestamp;
        m.abort_tx(110, 0);
        m.begin_tx(500, 0, TxSite(1));
        assert_eq!(m.txs[0].timestamp, ts1, "age kept across retries");
        let now = 510;
        match m.commit_tx(now, 0) {
            CommitOutcome::Committed { .. } => {}
            other => panic!("{other:?}"),
        }
        // After the commit window closes, a fresh transaction gets a new age.
        m.begin_tx(10_000, 0, TxSite(1));
        assert_ne!(m.txs[0].timestamp, ts1);
    }
}

#[cfg(test)]
mod nesting_tests {
    use super::*;
    use crate::logtm::LogTmSe;
    use suv_types::MachineConfig;

    fn machine() -> HtmMachine {
        let cfg = MachineConfig::small_test();
        HtmMachine::new(&cfg, Box::new(LogTmSe::new(cfg.n_cores, cfg.htm)))
    }

    fn done(a: Access) -> (u64, Cycle) {
        match a {
            Access::Done { value, latency } => (value, latency),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn partial_abort_keeps_outer_writes() {
        let mut m = machine();
        m.poke(0x100, 1);
        m.poke(0x140, 2);
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        let (_, l) = done(m.tx_store(t, 0, 0x100, 10)); // outer write
        t += l;
        // Nested level writes a different line, then partially aborts.
        t += m.begin_tx(t, 0, TxSite(2));
        let (_, l) = done(m.tx_store(t, 0, 0x140, 20));
        t += l;
        let d = m.abort_nested(t, 0).expect("LogTM-SE supports partial abort");
        t += d;
        assert_eq!(m.depth(0), 1, "back at the outer level");
        assert_eq!(m.mem.read_word(0x140), 2, "inner write rolled back");
        assert_eq!(m.mem.read_word(0x100), 10, "outer write survives");
        match m.commit_tx(t, 0) {
            CommitOutcome::Committed { .. } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(m.peek(0x100), 10);
        assert_eq!(m.peek(0x140), 2);
    }

    #[test]
    fn partial_abort_restores_outer_speculative_value_on_shared_line() {
        // Outer writes X=10, inner overwrites X=20, inner aborts: X must
        // return to the OUTER speculative value 10, not the pre-tx 1.
        let mut m = machine();
        m.poke(0x200, 1);
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        let (_, l) = done(m.tx_store(t, 0, 0x200, 10));
        t += l;
        t += m.begin_tx(t, 0, TxSite(2));
        let (_, l) = done(m.tx_store(t, 0, 0x200, 20));
        t += l;
        let d = m.abort_nested(t, 0).expect("partial abort");
        t += d;
        let (v, _) = done(m.tx_load(t, 0, 0x200));
        assert_eq!(v, 10, "outer speculative value restored");
        // And a full abort from here restores the pre-transaction value.
        let d = m.abort_tx(t + 5, 0);
        let _ = d;
        assert_eq!(m.peek(0x200), 1);
    }

    #[test]
    fn nested_commit_then_full_abort_unwinds_everything() {
        let mut m = machine();
        m.poke(0x300, 1);
        m.poke(0x340, 2);
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        let (_, l) = done(m.tx_store(t, 0, 0x300, 10));
        t += l;
        t += m.begin_tx(t, 0, TxSite(2));
        let (_, l) = done(m.tx_store(t, 0, 0x340, 20));
        t += l;
        match m.commit_tx(t, 0) {
            CommitOutcome::Committed { latency, .. } => t += latency,
            other => panic!("{other:?}"),
        }
        // Inner committed into the outer; outer aborts: both revert.
        m.abort_tx(t, 0);
        assert_eq!(m.peek(0x300), 1);
        assert_eq!(m.peek(0x340), 2, "inner-committed write dies with the outer abort");
    }

    #[test]
    fn inner_frame_sets_stop_defending_after_partial_abort() {
        let mut m = machine();
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        t += m.begin_tx(t, 0, TxSite(2));
        let (_, l) = done(m.tx_store(t, 0, 0x400, 7));
        t += l;
        let d = m.abort_nested(t, 0).expect("partial abort");
        t += d;
        // Another core can now write the line the aborted level touched.
        let mut t1 = t + 5;
        t1 += m.begin_tx(t1, 1, TxSite(3));
        match m.tx_store(t1, 1, 0x400, 9) {
            Access::Done { .. } => {}
            other => panic!("aborted inner level still defends: {other:?}"),
        }
    }

    #[test]
    fn abort_nested_returns_none_at_outer_level() {
        let mut m = machine();
        let mut t = 0;
        t += m.begin_tx(t, 0, TxSite(1));
        assert!(m.abort_nested(t, 0).is_none(), "outermost level needs a full abort");
    }
}
