//! Per-core transaction descriptors.

use std::collections::HashSet;
use suv_sig::Signature;
use suv_types::{Cycle, LineAddr, TxSite};

/// Lifecycle of a core's hardware transaction.
///
/// `Aborting` and `Committing` carry the end of the isolation window: until
/// that time the transaction's signatures keep defending its read/write
/// sets — this is the repair/merge pathology mechanism of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxStatus {
    /// No transaction in flight.
    #[default]
    Idle,
    /// Executing transactional work.
    Active,
    /// Rolling back; isolation held until the given cycle.
    Aborting { until: Cycle },
    /// Making updates visible; isolation held until the given cycle.
    Committing { until: Cycle },
}

/// One nesting level's conflict-detection state (LogTM-Nested stacked
/// frame). The outermost level lives directly in [`TxState`]; each nested
/// level pushes a frame.
#[derive(Debug)]
pub struct NestFrame {
    /// This level's read signature.
    pub rsig: Signature,
    /// This level's write signature.
    pub wsig: Signature,
    /// This level's exact write set.
    pub write_set: HashSet<LineAddr>,
    /// This level's exact read set.
    pub read_set: HashSet<LineAddr>,
}

/// State of (at most) one transaction per core.
#[derive(Debug)]
pub struct TxState {
    /// Lifecycle stage.
    pub status: TxStatus,
    /// Total order for conflict resolution: smaller = older. Assigned at
    /// the *first* attempt of a dynamic transaction and retained across
    /// retries so the oldest transaction eventually wins (LogTM rule).
    pub timestamp: u64,
    /// Static transaction site (for DynTM's predictor).
    pub site: TxSite,
    /// Running with lazy conflict detection (DynTM lazy mode)?
    pub lazy: bool,
    /// A committing lazy transaction decided this one must abort.
    pub doomed: bool,
    /// Running in irrevocable serialized mode (escalation ladder): holds
    /// the chip-wide irrevocable token, never receives a must-abort NACK
    /// verdict, and is guaranteed to commit. At most one core chip-wide
    /// (INV-11).
    pub irrevocable: bool,
    /// LogTM possible-cycle flag: set when this transaction NACKs an older
    /// requester; if it is then NACKed itself by an older transaction, it
    /// aborts to break a potential dependence cycle.
    pub possible_cycle: bool,
    /// Nesting depth (0 = not in a transaction).
    pub depth: usize,
    /// Read signature.
    pub rsig: Signature,
    /// Write signature.
    pub wsig: Signature,
    /// Exact write set (distinct lines) — used for lazy commit validation
    /// and overflow statistics; the signatures remain the *detection*
    /// mechanism.
    pub write_set: HashSet<LineAddr>,
    /// Distinct lines read (statistics only).
    pub read_set: HashSet<LineAddr>,
    /// Consecutive aborts of the current dynamic transaction (backoff).
    pub attempts: u32,
    /// Cycle at which the current attempt began.
    pub begin_time: Cycle,
    /// The current attempt speculatively wrote a line that was evicted
    /// from the L1 (transactional data overflow; Table V).
    pub overflowed_l1: bool,
    /// Stacked frames for nested levels (empty when flattening or at
    /// depth <= 1). `frames.len() == depth - 1` when partial-abort
    /// nesting is active.
    pub frames: Vec<NestFrame>,
    /// Signature geometry, for allocating new frames.
    sig_geom: (usize, usize, bool),
}

impl TxState {
    /// Fresh descriptor with signatures of the given geometry.
    #[must_use]
    pub fn new(sig_bits: usize, sig_hashes: usize) -> Self {
        Self::with_mode(sig_bits, sig_hashes, false)
    }

    /// Fresh descriptor; `perfect` selects exact-set signatures (ablation).
    #[must_use]
    pub fn with_mode(sig_bits: usize, sig_hashes: usize, perfect: bool) -> Self {
        let make = if perfect { Signature::perfect } else { Signature::new };
        TxState {
            status: TxStatus::Idle,
            timestamp: u64::MAX,
            site: TxSite::ANON,
            lazy: false,
            doomed: false,
            irrevocable: false,
            possible_cycle: false,
            depth: 0,
            rsig: make(sig_bits, sig_hashes),
            wsig: make(sig_bits, sig_hashes),
            write_set: HashSet::new(),
            read_set: HashSet::new(),
            attempts: 0,
            begin_time: 0,
            overflowed_l1: false,
            frames: Vec::new(),
            sig_geom: (sig_bits, sig_hashes, perfect),
        }
    }

    fn make_sig(&self) -> Signature {
        let (bits, k, perfect) = self.sig_geom;
        if perfect {
            Signature::perfect(bits, k)
        } else {
            Signature::new(bits, k)
        }
    }

    /// Push a stacked frame for a nested level.
    pub fn push_frame(&mut self) {
        self.frames.push(NestFrame {
            rsig: self.make_sig(),
            wsig: self.make_sig(),
            write_set: HashSet::new(),
            read_set: HashSet::new(),
        });
    }

    /// Pop the top frame, merging it into the level below (closed-nest
    /// commit: the inner sets become part of the parent's).
    pub fn merge_top_frame(&mut self) {
        let f = self.frames.pop().expect("no frame to merge");
        match self.frames.last_mut() {
            Some(parent) => {
                parent.rsig.union_with(&f.rsig);
                parent.wsig.union_with(&f.wsig);
                parent.write_set.extend(f.write_set);
                parent.read_set.extend(f.read_set);
            }
            None => {
                self.rsig.union_with(&f.rsig);
                self.wsig.union_with(&f.wsig);
                self.write_set.extend(f.write_set);
                self.read_set.extend(f.read_set);
            }
        }
    }

    /// Drop the top frame (partial abort: the inner level's sets stop
    /// defending).
    pub fn drop_top_frame(&mut self) {
        self.frames.pop().expect("no frame to drop");
    }

    /// Record a transactional read at the current level.
    pub fn note_read(&mut self, line: LineAddr) {
        match self.frames.last_mut() {
            Some(f) => {
                f.rsig.insert(line);
                f.read_set.insert(line);
            }
            None => {
                self.rsig.insert(line);
                self.read_set.insert(line);
            }
        }
    }

    /// Record a transactional write at the current level.
    pub fn note_write(&mut self, line: LineAddr) {
        match self.frames.last_mut() {
            Some(f) => {
                f.wsig.insert(line);
                f.write_set.insert(line);
            }
            None => {
                self.wsig.insert(line);
                self.write_set.insert(line);
            }
        }
    }

    /// Does any level's read signature cover this line?
    #[must_use]
    pub fn rsig_hit(&self, line: LineAddr) -> bool {
        self.rsig.contains(line) || self.frames.iter().any(|f| f.rsig.contains(line))
    }

    /// Does any level's write signature cover this line?
    #[must_use]
    pub fn wsig_hit(&self, line: LineAddr) -> bool {
        self.wsig.contains(line) || self.frames.iter().any(|f| f.wsig.contains(line))
    }

    /// Exact: has any level of this transaction written this line?
    #[must_use]
    pub fn writes_contain(&self, line: LineAddr) -> bool {
        self.write_set.contains(&line) || self.frames.iter().any(|f| f.write_set.contains(&line))
    }

    /// All distinct written lines across levels (lazy commit validation,
    /// statistics).
    #[must_use]
    pub fn all_write_lines(&self) -> Vec<LineAddr> {
        let mut v: Vec<LineAddr> = self.write_set.iter().copied().collect();
        for f in &self.frames {
            v.extend(f.write_set.iter().copied());
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Is the transaction currently defending its sets at time `now`?
    /// (Active always; Aborting/Committing until the window closes.)
    #[must_use]
    pub fn isolation_live(&self, now: Cycle) -> bool {
        match self.status {
            TxStatus::Idle => false,
            TxStatus::Active => true,
            TxStatus::Aborting { until } | TxStatus::Committing { until } => now < until,
        }
    }

    /// Reset per-attempt state (after the isolation window closes).
    pub fn clear_attempt(&mut self) {
        self.status = TxStatus::Idle;
        self.lazy = false;
        self.doomed = false;
        self.irrevocable = false;
        self.possible_cycle = false;
        self.depth = 0;
        self.rsig.clear();
        self.wsig.clear();
        self.write_set.clear();
        self.read_set.clear();
        self.overflowed_l1 = false;
        self.frames.clear();
    }

    /// Reset everything including retry bookkeeping (after a commit).
    pub fn clear_dynamic(&mut self) {
        self.clear_attempt();
        self.attempts = 0;
        self.timestamp = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx() -> TxState {
        TxState::new(256, 2)
    }

    #[test]
    fn fresh_state_idle() {
        let t = tx();
        assert_eq!(t.status, TxStatus::Idle);
        assert!(!t.isolation_live(0));
        assert_eq!(t.depth, 0);
    }

    #[test]
    fn isolation_window_semantics() {
        let mut t = tx();
        t.status = TxStatus::Active;
        assert!(t.isolation_live(123));
        t.status = TxStatus::Aborting { until: 100 };
        assert!(t.isolation_live(99));
        assert!(!t.isolation_live(100));
        t.status = TxStatus::Committing { until: 50 };
        assert!(t.isolation_live(49));
        assert!(!t.isolation_live(51));
    }

    #[test]
    fn clear_attempt_keeps_retry_state() {
        let mut t = tx();
        t.status = TxStatus::Active;
        t.attempts = 3;
        t.timestamp = 42;
        t.wsig.insert(0x40);
        t.write_set.insert(0x40);
        t.possible_cycle = true;
        t.clear_attempt();
        assert_eq!(t.status, TxStatus::Idle);
        assert!(t.wsig.is_clear());
        assert!(t.write_set.is_empty());
        assert!(!t.possible_cycle);
        assert_eq!(t.attempts, 3, "retry count survives an attempt");
        assert_eq!(t.timestamp, 42, "age survives an attempt (LogTM rule)");
    }

    #[test]
    fn clear_dynamic_resets_everything() {
        let mut t = tx();
        t.attempts = 5;
        t.timestamp = 7;
        t.clear_dynamic();
        assert_eq!(t.attempts, 0);
        assert_eq!(t.timestamp, u64::MAX);
    }
}
