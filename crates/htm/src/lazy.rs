//! Lazy (TCC/LTM-style) version management: the write buffer.
//!
//! Speculative stores are buffered privately; loads snoop the local buffer
//! first. Commit merges the buffer into memory line by line, acquiring
//! ownership of each line — the *merge* time that stretches the isolation
//! window of lazy schemes (Figure 1's merge pathology). Abort just drops
//! the buffer. DynTM uses this as its lazy execution mode.

use crate::vm::{LoadTarget, StoreTarget, VersionManager, VmEnv};
use std::collections::HashMap;
use suv_coherence::AccessKind;
use suv_trace::TraceEvent;
use suv_types::{line_of, word_of, Addr, CoreId, Cycle, LineAddr, SchemeKind};

#[derive(Debug, Default)]
struct Buffer {
    /// Buffered word values.
    words: HashMap<Addr, u64>,
    /// Lines touched, in first-write order (merge order is deterministic).
    lines: Vec<LineAddr>,
}

/// Write-buffer lazy VM.
pub struct LazyVm {
    bufs: Vec<Buffer>,
    /// Distinct-buffered-lines budget per transaction (0 = unbounded); a
    /// store to a new line past the budget becomes
    /// [`StoreTarget::Overflow`].
    buffer_lines: usize,
    /// Cores in irrevocable serialized mode bypass the budget.
    irrevocable: Vec<bool>,
}

impl LazyVm {
    /// One buffer per core, unbounded.
    #[must_use]
    pub fn new(n_cores: usize) -> Self {
        Self::with_buffer_lines(n_cores, 0)
    }

    /// One buffer per core, capped at `buffer_lines` distinct lines per
    /// transaction (0 = unbounded).
    #[must_use]
    pub fn with_buffer_lines(n_cores: usize, buffer_lines: usize) -> Self {
        LazyVm {
            bufs: (0..n_cores).map(|_| Buffer::default()).collect(),
            buffer_lines,
            irrevocable: vec![false; n_cores],
        }
    }

    /// Buffered distinct lines for a core (tests).
    #[must_use]
    pub fn buffered_lines(&self, core: CoreId) -> usize {
        self.bufs[core].lines.len()
    }
}

impl VersionManager for LazyVm {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Lazy
    }

    fn begin(&mut self, _env: &mut VmEnv, core: CoreId, _lazy: bool) -> Cycle {
        let b = &mut self.bufs[core];
        b.words.clear();
        b.lines.clear();
        0
    }

    fn resolve_load(
        &mut self,
        _env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        in_tx: bool,
    ) -> (LoadTarget, Cycle) {
        if in_tx {
            if let Some(v) = self.bufs[core].words.get(&word_of(addr)) {
                return (LoadTarget::Value(*v), 0);
            }
        }
        (LoadTarget::Mem(addr), 0)
    }

    fn prepare_store(
        &mut self,
        _env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        value: u64,
        in_tx: bool,
    ) -> (StoreTarget, Cycle) {
        if !in_tx {
            return (StoreTarget::Mem(addr), 0);
        }
        let b = &mut self.bufs[core];
        let line = line_of(addr);
        if !b.lines.contains(&line) {
            if self.buffer_lines != 0
                && !self.irrevocable[core]
                && b.lines.len() >= self.buffer_lines
            {
                // Buffer budget exhausted before any bookkeeping: abort
                // and escalate.
                return (StoreTarget::Overflow, 0);
            }
            b.lines.push(line);
        }
        b.words.insert(word_of(addr), value);
        (StoreTarget::Buffered, 0)
    }

    fn commit(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        // Merge: acquire ownership of each written line and write the
        // buffered words through. This is the commit-side data movement
        // lazy schemes pay.
        let b = std::mem::take(&mut self.bufs[core]);
        env.tracer.emit(
            env.now,
            core,
            TraceEvent::WriteBufferDrain { lines: b.lines.len() as u64 },
        );
        let mut lat = 0;
        for line in &b.lines {
            lat += if env.sys.has_permission(core, *line, AccessKind::Store) {
                env.sys.access_hit(core, *line, AccessKind::Store)
            } else {
                env.sys.fill(env.now + lat, core, *line, AccessKind::Store).latency
            };
        }
        for (addr, v) in &b.words {
            env.mem.write_word(*addr, *v);
        }
        lat
    }

    fn abort(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        // Discard the buffer: single-cycle flash clear.
        let b = &mut self.bufs[core];
        b.words.clear();
        b.lines.clear();
        1
    }

    fn set_irrevocable(&mut self, core: CoreId, on: bool) {
        self.irrevocable[core] = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_coherence::MemorySystem;
    use suv_mem::Memory;
    use suv_trace::Tracer;
    use suv_types::MachineConfig;

    fn setup() -> (Memory, MemorySystem, LazyVm) {
        let mc = MachineConfig::small_test();
        (Memory::new(), MemorySystem::new(&mc), LazyVm::new(mc.n_cores))
    }

    #[test]
    fn stores_invisible_until_commit() {
        let (mut mem, mut sys, mut vm) = setup();
        mem.write_word(0x100, 5);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        let (tgt, _) = vm.prepare_store(&mut env, 0, 0x100, 9, true);
        assert_eq!(tgt, StoreTarget::Buffered);
        assert_eq!(env.mem.read_word(0x100), 5, "memory untouched before commit");
        // The writing core sees its own buffered value.
        let (lt, _) = vm.resolve_load(&mut env, 0, 0x100, true);
        assert_eq!(lt, LoadTarget::Value(9));
        // Another core still resolves to memory.
        let (lt1, _) = vm.resolve_load(&mut env, 1, 0x100, true);
        assert_eq!(lt1, LoadTarget::Mem(0x100));
    }

    #[test]
    fn commit_merges_and_costs_per_line() {
        let (mut mem, mut sys, mut vm) = setup();
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        for i in 0..8u64 {
            vm.prepare_store(&mut env, 0, 0x2000 + i * 64, i, true);
        }
        let big = vm.commit(&mut env, 0);
        vm.begin(&mut env, 0, false);
        vm.prepare_store(&mut env, 0, 0x8000, 42, true);
        let small = vm.commit(&mut env, 0);
        assert!(big > small, "merge time scales with write set ({big} vs {small})");
        for i in 0..8u64 {
            assert_eq!(mem.read_word(0x2000 + i * 64), i);
        }
        assert_eq!(mem.read_word(0x8000), 42);
    }

    #[test]
    fn abort_discards_cheaply() {
        let (mut mem, mut sys, mut vm) = setup();
        mem.write_word(0x300, 1);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        vm.prepare_store(&mut env, 0, 0x300, 2, true);
        let lat = vm.abort(&mut env, 0);
        assert_eq!(lat, 1, "lazy abort is a flash discard");
        assert_eq!(env.mem.read_word(0x300), 1);
        assert_eq!(vm.buffered_lines(0), 0);
    }

    #[test]
    fn word_granularity_merge_preserves_unwritten_words() {
        let (mut mem, mut sys, mut vm) = setup();
        mem.write_word(0x400, 10);
        mem.write_word(0x408, 20);
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        vm.prepare_store(&mut env, 0, 0x408, 99, true);
        vm.commit(&mut env, 0);
        assert_eq!(mem.read_word(0x400), 10, "unwritten word survives the merge");
        assert_eq!(mem.read_word(0x408), 99);
    }

    #[test]
    fn buffers_are_per_core() {
        let (mut mem, mut sys, mut vm) = setup();
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        vm.begin(&mut env, 1, false);
        vm.prepare_store(&mut env, 0, 0x500, 1, true);
        vm.prepare_store(&mut env, 1, 0x540, 2, true);
        assert_eq!(vm.buffered_lines(0), 1);
        assert_eq!(vm.buffered_lines(1), 1);
        vm.abort(&mut env, 0);
        assert_eq!(vm.buffered_lines(1), 1, "core 1's buffer unaffected");
    }
}
