//! The version-manager interface.
//!
//! A [`VersionManager`] decides *where* transactional data lives and *what
//! it costs* to get there: it resolves load/store targets (identity for
//! in-place schemes, pool addresses for SUV, buffer hits for lazy schemes),
//! performs its bookkeeping (undo logging, redirect-entry management, write
//! buffering) against the functional memory, and implements commit/abort.
//!
//! Conflict detection, signatures, NACK policy and statistics plumbing are
//! *not* the version manager's business — the
//! [`HtmMachine`](crate::machine::HtmMachine) handles those uniformly so
//! the schemes differ only in the dimension the paper studies.

use suv_coherence::{L1Evict, MemorySystem};
use suv_mem::Memory;
use suv_trace::Tracer;
use suv_types::{Addr, CoreId, Cycle, RedirectStats, SchemeKind, TxSite};

/// Mutable view of the machine a version manager operates through.
pub struct VmEnv<'a> {
    /// Functional memory (real data values).
    pub mem: &'a mut Memory,
    /// Timing model (caches, directory, NoC, memory banks).
    pub sys: &'a mut MemorySystem,
    /// Current simulated time of the acting core.
    pub now: Cycle,
    /// Event sink; a disabled tracer costs one predictable branch per
    /// emission, so version managers emit unconditionally except where
    /// computing the payload itself is expensive (gate those on
    /// [`Tracer::on`]).
    pub tracer: &'a mut Tracer,
}

/// Where a load's data comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadTarget {
    /// Read memory at this (possibly redirected) word address. This is the
    /// *functional* location only: the machine charges coherence and
    /// caching on the original address (SUV issues GETS/GETM on the
    /// original block and merely lands the data elsewhere).
    Mem(Addr),
    /// The value comes straight from a private buffer (lazy write buffer
    /// hit); only an L1-latency charge applies.
    Value(u64),
}

/// Where a store's data goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreTarget {
    /// Write memory at this (possibly redirected) word address — the
    /// functional location only; coherence is charged on the original
    /// address (see [`LoadTarget::Mem`]).
    Mem(Addr),
    /// The version manager consumed the value into a private buffer; the
    /// machine charges only an L1 access and skips the memory write.
    Buffered,
    /// The version manager ran out of capacity (redirect pool dry, undo
    /// log full, write buffer full) and performed *no* bookkeeping for
    /// this store. The machine must abort the transaction; retrying it
    /// climbs the escalation ladder (backoff, then irrevocable mode).
    Overflow,
}

/// A pluggable version-management scheme.
///
/// One instance manages *all* cores (SUV's second-level redirect table is
/// shared chip-wide), with per-core internal state keyed by `CoreId`.
pub trait VersionManager: Send {
    /// Which scheme this is (for reporting).
    fn kind(&self) -> SchemeKind;

    /// Decide the execution mode for a transaction about to begin at
    /// `site`. `true` = lazy conflict detection (DynTM); the default is
    /// eager for every non-DynTM scheme.
    fn choose_mode(&mut self, _core: CoreId, _site: TxSite) -> bool {
        false
    }

    /// Outermost transaction begin. Returns extra begin latency on top of
    /// the framework's checkpoint cost.
    fn begin(&mut self, env: &mut VmEnv, core: CoreId, lazy: bool) -> Cycle;

    /// Resolve the target of a load of `addr` and return any extra
    /// resolution latency (e.g. SUV redirect-table lookups). Called for
    /// both transactional (`in_tx`) and non-transactional accesses (strong
    /// isolation puts the lookup on every path).
    fn resolve_load(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        in_tx: bool,
    ) -> (LoadTarget, Cycle);

    /// Perform version-management bookkeeping for a store of `value` to
    /// `addr` and return the target plus extra latency. For transactional
    /// stores this is where undo logging / redirect-entry insertion / write
    /// buffering happens; the machine performs the actual functional write
    /// for `StoreTarget::Mem` targets *after* this returns.
    fn prepare_store(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        value: u64,
        in_tx: bool,
    ) -> (StoreTarget, Cycle);

    /// Commit the core's transaction: make its updates globally visible
    /// (for lazy schemes this is the merge). Returns the commit duration;
    /// the machine keeps the isolation window open for that long.
    fn commit(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle;

    /// Abort the core's transaction: restore pre-transactional state.
    /// Returns the abort duration (the *repair* time); the machine keeps
    /// the isolation window open for that long.
    fn abort(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle;

    /// Notification that a fill on behalf of `core` evicted an L1 line.
    /// FasTM uses the speculative mark to detect overflow/degeneration.
    fn on_eviction(&mut self, _core: CoreId, _ev: &L1Evict) {}

    /// Report and reset the per-transaction redirect-table overflow flags:
    /// `(overflowed first-level table, overflowed into memory)`. Called by
    /// the machine when a transaction ends.
    fn take_rt_overflow(&mut self, _core: CoreId) -> (bool, bool) {
        (false, false)
    }

    /// Does this version manager support per-level rollback (closed
    /// nesting with partial abort)? When `false`, the machine flattens
    /// nested transactions into the outermost one.
    fn supports_partial_abort(&self) -> bool {
        false
    }

    /// A nested level begins: push a rollback watermark. Returns extra
    /// latency (the stacked-frame save).
    fn begin_level(&mut self, _env: &mut VmEnv, _core: CoreId) -> Cycle {
        0
    }

    /// The innermost nested level commits: merge its tracking into the
    /// parent level. Returns extra latency.
    fn commit_level(&mut self, _env: &mut VmEnv, _core: CoreId) -> Cycle {
        0
    }

    /// Partially abort the innermost nested level: restore only the data
    /// that level wrote. Returns the rollback duration.
    fn abort_level(&mut self, _env: &mut VmEnv, _core: CoreId) -> Cycle {
        unreachable!("abort_level called on a VM without partial-abort support")
    }

    /// Predictor feedback (DynTM): the transaction at `site` finished.
    fn tx_finished(&mut self, _core: CoreId, _site: TxSite, _committed: bool) {}

    /// The machine switched `core` into (or out of) irrevocable serialized
    /// mode. An irrevocable transaction is guaranteed to commit, so the VM
    /// may bypass its capacity limits — and must never return
    /// [`StoreTarget::Overflow`] — while the flag is set. The default
    /// (capacity-unlimited VMs) ignores it.
    fn set_irrevocable(&mut self, _core: CoreId, _on: bool) {}

    /// Redirect-table statistics (SUV; zero elsewhere).
    fn redirect_stats(&self) -> RedirectStats {
        RedirectStats::default()
    }

    /// Number of transactions this VM ran in lazy mode (DynTM).
    fn lazy_tx_count(&self) -> u64 {
        0
    }

    /// Audit the version manager's own data structures for internal
    /// consistency (SUV's redirect-table invariants INV-5..INV-8 in
    /// DESIGN.md). Called by the machine at every transaction boundary
    /// when `CheckLevel >= Cheap`; never charged simulated cycles. The
    /// default has nothing to check.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_types::MachineConfig;

    /// A trivial in-place VM used to exercise the trait's defaults.
    struct Nop;
    impl VersionManager for Nop {
        fn kind(&self) -> SchemeKind {
            SchemeKind::LogTmSe
        }
        fn begin(&mut self, _: &mut VmEnv, _: CoreId, _: bool) -> Cycle {
            0
        }
        fn resolve_load(
            &mut self,
            _: &mut VmEnv,
            _: CoreId,
            addr: Addr,
            _: bool,
        ) -> (LoadTarget, Cycle) {
            (LoadTarget::Mem(addr), 0)
        }
        fn prepare_store(
            &mut self,
            _: &mut VmEnv,
            _: CoreId,
            addr: Addr,
            _: u64,
            _: bool,
        ) -> (StoreTarget, Cycle) {
            (StoreTarget::Mem(addr), 0)
        }
        fn commit(&mut self, _: &mut VmEnv, _: CoreId) -> Cycle {
            0
        }
        fn abort(&mut self, _: &mut VmEnv, _: CoreId) -> Cycle {
            0
        }
    }

    #[test]
    fn trait_defaults() {
        let mut vm = Nop;
        assert!(!vm.choose_mode(0, TxSite(1)));
        assert_eq!(vm.take_rt_overflow(0), (false, false));
        assert_eq!(vm.redirect_stats(), RedirectStats::default());
        assert_eq!(vm.lazy_tx_count(), 0);
        vm.set_irrevocable(0, true); // default is a no-op
        vm.set_irrevocable(0, false);
        let mut mem = Memory::new();
        let mut sys = MemorySystem::new(&MachineConfig::small_test());
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        assert_eq!(vm.begin(&mut env, 0, false), 0);
        assert_eq!(vm.resolve_load(&mut env, 0, 0x40, true), (LoadTarget::Mem(0x40), 0));
    }
}
