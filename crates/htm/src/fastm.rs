//! FasTM version management.
//!
//! FasTM exploits the inconsistency between the L1 and the lower levels of
//! the hierarchy: speculative new values live only in the L1; the old value
//! stays in the L2 (which requires writing back a dirty line before its
//! first speculative update). Abort is then a fast gang-invalidate of the
//! speculatively-written L1 lines — the old values reappear from the L2 —
//! *unless* a speculative line was evicted, in which case the transaction
//! degenerates to LogTM-SE behaviour: log maintenance for subsequent writes
//! and a software walk on abort.

use crate::vm::{LoadTarget, StoreTarget, VersionManager, VmEnv};
use suv_coherence::{AccessKind, L1Evict, MemorySystem};
use suv_mem::{LineData, Region};
use suv_trace::TraceEvent;
use suv_types::{line_of, Addr, CoreId, Cycle, HtmConfig, LineAddr, SchemeKind, LINE_BYTES};

/// Fixed cost of the fast abort path: gang-invalidate the speculative L1
/// lines and switch the FSM, independent of the write-set size.
const FAST_ABORT_CYCLES: Cycle = 10;

#[derive(Debug, Default)]
struct CoreState {
    /// Old line values (conceptually the L2 copies), in write order.
    old: Vec<(LineAddr, LineData)>,
    /// The transaction lost a speculative line from the L1 and fell back
    /// to LogTM-SE behaviour.
    degenerate: bool,
    /// Log write pointer for charging degenerate-mode log maintenance.
    log_ptr: Addr,
    /// Per-nested-level watermarks into `old` (stacked frames).
    marks: Vec<usize>,
}

impl CoreState {
    /// Saved at the *current* nesting level? Inner levels re-save lines an
    /// outer level wrote so partial abort can restore the outer value.
    fn has_old(&self, line: LineAddr) -> bool {
        let start = self.marks.last().copied().unwrap_or(0);
        self.old[start..].iter().any(|(l, _)| *l == line)
    }
}

/// FasTM.
pub struct FasTm {
    cores: Vec<CoreState>,
    cfg: HtmConfig,
    /// Degenerate-mode log byte budget (0 = unbounded); shares the
    /// `RobustnessConfig::log_bytes` knob with LogTM-SE.
    log_bytes: Addr,
    /// Cores in irrevocable serialized mode bypass the budget.
    irrevocable: Vec<bool>,
}

impl FasTm {
    /// Per-core state for `n_cores`, unbounded degenerate log.
    #[must_use]
    pub fn new(n_cores: usize, cfg: HtmConfig) -> Self {
        Self::with_log_bytes(n_cores, cfg, 0)
    }

    /// Per-core state with the degenerate-mode log capped at `log_bytes`
    /// bytes (0 = unbounded).
    #[must_use]
    pub fn with_log_bytes(n_cores: usize, cfg: HtmConfig, log_bytes: Addr) -> Self {
        FasTm {
            cores: (0..n_cores).map(|_| CoreState::default()).collect(),
            cfg,
            log_bytes,
            irrevocable: vec![false; n_cores],
        }
    }

    /// Has the core's current transaction degenerated? (tests)
    #[must_use]
    pub fn is_degenerate(&self, core: CoreId) -> bool {
        self.cores[core].degenerate
    }

    fn charge(
        sys: &mut MemorySystem,
        now: Cycle,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle {
        if sys.has_permission(core, addr, kind) {
            sys.access_hit(core, addr, kind)
        } else {
            sys.fill(now, core, addr, kind).latency
        }
    }
}

impl VersionManager for FasTm {
    fn kind(&self) -> SchemeKind {
        SchemeKind::FasTm
    }

    fn begin(&mut self, _env: &mut VmEnv, core: CoreId, _lazy: bool) -> Cycle {
        let st = &mut self.cores[core];
        st.old.clear();
        st.degenerate = false;
        st.log_ptr = 0;
        st.marks.clear();
        0
    }

    fn resolve_load(
        &mut self,
        _env: &mut VmEnv,
        _core: CoreId,
        addr: Addr,
        _in_tx: bool,
    ) -> (LoadTarget, Cycle) {
        (LoadTarget::Mem(addr), 0)
    }

    fn prepare_store(
        &mut self,
        env: &mut VmEnv,
        core: CoreId,
        addr: Addr,
        _value: u64,
        in_tx: bool,
    ) -> (StoreTarget, Cycle) {
        if !in_tx {
            return (StoreTarget::Mem(addr), 0);
        }
        let line = line_of(addr);
        let mut lat = 0;
        if !self.cores[core].has_old(line) {
            if self.cores[core].degenerate
                && self.log_bytes != 0
                && !self.irrevocable[core]
                && self.cores[core].log_ptr + LINE_BYTES + 8 > self.log_bytes
            {
                // Degenerate-mode log budget exhausted before any
                // bookkeeping: abort and escalate.
                return (StoreTarget::Overflow, 0);
            }
            // First speculative write to this line: the old value must be
            // safe in the L2, so a dirty L1 copy is written back first.
            lat += env.sys.writeback_line(env.now, core, addr);
            let old = env.mem.read_line(line);
            self.cores[core].old.push((line, old));
            if self.cores[core].degenerate {
                // Fallback mode: pay LogTM-style log maintenance.
                let st = &mut self.cores[core];
                let rec = Region::log(core).base + st.log_ptr;
                st.log_ptr += LINE_BYTES + 8;
                lat += Self::charge(env.sys, env.now + lat, core, rec, AccessKind::Store);
            }
        }
        (StoreTarget::Mem(addr), lat)
    }

    fn commit(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        let st = &mut self.cores[core];
        st.old.clear();
        st.degenerate = false;
        st.log_ptr = 0;
        st.marks.clear();
        env.sys.clear_speculative(core);
        1
    }

    fn abort(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        let degenerate = self.cores[core].degenerate;
        let old = std::mem::take(&mut self.cores[core].old);
        self.cores[core].degenerate = false;
        let mut lat;
        if degenerate {
            // LogTM-SE path: software trap, then walk every written line,
            // reading the log record and storing the old value in place.
            env.tracer.emit(env.now, core, TraceEvent::UndoWalk { entries: old.len() as u64 });
            lat = self.cfg.software_trap_cycles;
            let mut log_ptr = self.cores[core].log_ptr;
            for (line, data) in old.iter().rev() {
                log_ptr = log_ptr.saturating_sub(LINE_BYTES + 8);
                let rec = Region::log(core).base + log_ptr;
                lat += Self::charge(env.sys, env.now + lat, core, rec, AccessKind::Load);
                lat += Self::charge(env.sys, env.now + lat, core, *line, AccessKind::Store);
                env.mem.write_line(*line, *data);
            }
            self.cores[core].log_ptr = 0;
        } else {
            // Fast path: gang-invalidate the speculative L1 lines; the L2
            // still holds the old values, which the functional restore
            // makes visible. Later accesses re-fetch from the L2 (the
            // extra misses emerge from the invalidations).
            env.tracer.emit(env.now, core, TraceEvent::GangInvalidate { lines: old.len() as u64 });
            lat = FAST_ABORT_CYCLES;
            for (line, data) in old.iter().rev() {
                env.sys.invalidate_local(core, *line);
                env.mem.write_line(*line, *data);
            }
        }
        env.sys.clear_speculative(core);
        lat
    }

    fn on_eviction(&mut self, core: CoreId, ev: &L1Evict) {
        if ev.speculative {
            self.cores[core].degenerate = true;
        }
    }

    fn set_irrevocable(&mut self, core: CoreId, on: bool) {
        self.irrevocable[core] = on;
    }

    fn supports_partial_abort(&self) -> bool {
        true
    }

    fn begin_level(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        let st = &mut self.cores[core];
        st.marks.push(st.old.len());
        1
    }

    fn commit_level(&mut self, _env: &mut VmEnv, core: CoreId) -> Cycle {
        self.cores[core].marks.pop().expect("no level to merge");
        1
    }

    fn abort_level(&mut self, env: &mut VmEnv, core: CoreId) -> Cycle {
        let mark = self.cores[core].marks.pop().expect("no level to abort");
        let degenerate = self.cores[core].degenerate;
        let frame: Vec<(LineAddr, LineData)> = self.cores[core].old.split_off(mark);
        let mut lat = if degenerate { self.cfg.software_trap_cycles } else { FAST_ABORT_CYCLES };
        for (line, data) in frame.iter().rev() {
            if degenerate {
                lat += Self::charge(env.sys, env.now + lat, core, *line, AccessKind::Store);
            } else {
                env.sys.invalidate_local(core, *line);
            }
            env.mem.write_line(*line, *data);
        }
        lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_coherence::MemorySystem;
    use suv_mem::Memory;
    use suv_trace::Tracer;
    use suv_types::MachineConfig;

    fn setup() -> (Memory, MemorySystem, FasTm) {
        let mc = MachineConfig::small_test();
        (Memory::new(), MemorySystem::new(&mc), FasTm::new(mc.n_cores, mc.htm))
    }

    #[test]
    fn fast_abort_restores_old_values_in_constant_time() {
        let (mut mem, mut sys, mut vm) = setup();
        for i in 0..20u64 {
            mem.write_word(0x1000 + i * 64, i + 1);
        }
        {
            let mut tr = Tracer::disabled();
            let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
            vm.begin(&mut env, 0, false);
            for i in 0..20u64 {
                vm.prepare_store(&mut env, 0, 0x1000 + i * 64, 777, true);
            }
        }
        for i in 0..20u64 {
            mem.write_word(0x1000 + i * 64, 777);
        }
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 100, tracer: &mut tr };
        let lat = vm.abort(&mut env, 0);
        assert_eq!(lat, FAST_ABORT_CYCLES, "fast abort is O(1)");
        for i in 0..20u64 {
            assert_eq!(mem.read_word(0x1000 + i * 64), i + 1);
        }
    }

    #[test]
    fn degenerate_abort_is_slow() {
        let (mut mem, mut sys, mut vm) = setup();
        {
            let mut tr = Tracer::disabled();
            let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
            vm.begin(&mut env, 0, false);
            vm.prepare_store(&mut env, 0, 0x2000, 1, true);
            vm.prepare_store(&mut env, 0, 0x2040, 2, true);
        }
        // Simulate a speculative line being evicted.
        vm.on_eviction(0, &L1Evict { line: 0x2000, dirty: true, speculative: true });
        assert!(vm.is_degenerate(0));
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 100, tracer: &mut tr };
        let lat = vm.abort(&mut env, 0);
        assert!(lat > FAST_ABORT_CYCLES + 50, "degenerate abort must pay trap + walk, got {lat}");
        assert!(!vm.is_degenerate(0), "flag cleared for the next attempt");
    }

    #[test]
    fn non_speculative_eviction_does_not_degenerate() {
        let (_, _, mut vm) = setup();
        vm.on_eviction(0, &L1Evict { line: 0x40, dirty: true, speculative: false });
        assert!(!vm.is_degenerate(0));
    }

    #[test]
    fn dirty_line_written_back_before_first_speculative_write() {
        let (mut mem, mut sys, mut vm) = setup();
        // Make the line dirty in core 0's L1 (pre-transactional store).
        sys.fill(0, 0, 0x3000, AccessKind::Store);
        sys.access_hit(0, 0x3000, AccessKind::Store);
        assert!(sys.is_dirty_in_l1(0, 0x3000));
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 10, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        let (_, lat) = vm.prepare_store(&mut env, 0, 0x3000, 9, true);
        assert!(lat > 0, "write-back of the dirty old value must be charged");
        assert!(!sys.is_dirty_in_l1(0, 0x3000));
    }

    #[test]
    fn second_write_to_same_line_is_free() {
        let (mut mem, mut sys, mut vm) = setup();
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        vm.prepare_store(&mut env, 0, 0x4000, 1, true);
        let (_, lat) = vm.prepare_store(&mut env, 0, 0x4008, 2, true);
        assert_eq!(lat, 0);
    }

    #[test]
    fn commit_clears_state() {
        let (mut mem, mut sys, mut vm) = setup();
        let mut tr = Tracer::disabled();
        let mut env = VmEnv { mem: &mut mem, sys: &mut sys, now: 0, tracer: &mut tr };
        vm.begin(&mut env, 0, false);
        vm.prepare_store(&mut env, 0, 0x5000, 1, true);
        let lat = vm.commit(&mut env, 0);
        assert!(lat <= 2);
        // A new transaction starts clean.
        vm.begin(&mut env, 0, false);
        assert!(!vm.is_degenerate(0));
    }
}
