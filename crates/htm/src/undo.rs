//! The LogTM-style undo log.
//!
//! An append-only log of `(line address, old line data)` records kept in
//! the owning thread's private memory region. Maintaining it costs real
//! hierarchy accesses (the per-store overhead the paper charges LogTM-SE
//! with), and the software abort walk replays it *backwards*, restoring
//! old values through the memory system — which is exactly the *repair*
//! time that stretches the isolation window.

use suv_coherence::{AccessKind, MemorySystem};
use suv_mem::{LineData, Memory, Region};
use suv_types::{line_of, Addr, CoreId, Cycle, LineAddr, LINE_BYTES};

/// One undo record.
#[derive(Debug, Clone, Copy)]
struct UndoRecord {
    line: LineAddr,
    old: LineData,
}

/// Per-thread undo log.
#[derive(Debug)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
    /// Base of the thread's private log region (for charging accesses).
    base: Addr,
    /// Next log write position (byte offset from `base`).
    write_ptr: Addr,
    /// Record-count watermarks, one per open nested level (LogTM-Nested
    /// log frames).
    level_marks: Vec<usize>,
}

/// Bytes one record occupies in the log: the old line plus its address
/// (64 + 8, padded to 72 — matching LogTM's layout).
const RECORD_BYTES: Addr = LINE_BYTES + 8;

impl UndoLog {
    /// Log for thread `core` in its private region.
    #[must_use]
    pub fn new(core: CoreId) -> Self {
        let base = Region::log(core).base;
        UndoLog { records: Vec::new(), base, write_ptr: 0, level_marks: Vec::new() }
    }

    /// Has the line already been logged *at the current nesting level*?
    /// (A line written by an outer level is re-logged by an inner one so
    /// a partial abort can restore the outer level's speculative value.)
    #[must_use]
    pub fn has_logged(&self, line: LineAddr) -> bool {
        let start = self.level_marks.last().copied().unwrap_or(0);
        self.records[start..].iter().any(|r| r.line == line)
    }

    /// Open a nested-level log frame.
    pub fn push_level(&mut self) {
        self.level_marks.push(self.records.len());
    }

    /// Close the top log frame on inner commit: the records fold into the
    /// parent frame (replaying them on a later abort is still correct —
    /// the reverse walk restores the oldest value last).
    pub fn merge_level(&mut self) {
        self.level_marks.pop().expect("no log frame to merge");
    }

    /// Partial abort: replay and discard only the top frame's records.
    /// Returns the walk latency.
    pub fn unwind_level(
        &mut self,
        mem: &mut Memory,
        sys: &mut MemorySystem,
        now: Cycle,
        core: CoreId,
    ) -> Cycle {
        let mark = self.level_marks.pop().expect("no log frame to unwind");
        self.unwind_from(mem, sys, now, core, mark)
    }

    /// Append an undo record for `addr`'s line, capturing its current
    /// contents, and charge the log-write accesses through the hierarchy.
    /// Returns the charged latency. No-op (0 cycles) if already logged.
    pub fn log_old_value(
        &mut self,
        mem: &Memory,
        sys: &mut MemorySystem,
        now: Cycle,
        core: CoreId,
        addr: Addr,
    ) -> Cycle {
        let line = line_of(addr);
        if self.has_logged(line) {
            return 0;
        }
        self.records.push(UndoRecord { line, old: mem.read_line(line) });
        // Charge the stores that place the record in the (cached) log:
        // the record spans up to two log lines.
        let mut lat = 0;
        let start = self.base + self.write_ptr;
        let end = start + RECORD_BYTES - 1;
        self.write_ptr += RECORD_BYTES;
        for log_line in [line_of(start), line_of(end)] {
            lat += Self::charge(sys, now + lat, core, log_line, AccessKind::Store);
            if line_of(start) == line_of(end) {
                break;
            }
        }
        lat
    }

    /// Charge one hierarchy access without conflict checks (log space is
    /// thread-private; abort restoration must always make progress).
    fn charge(
        sys: &mut MemorySystem,
        now: Cycle,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
    ) -> Cycle {
        if sys.has_permission(core, addr, kind) {
            sys.access_hit(core, addr, kind)
        } else {
            sys.fill(now, core, addr, kind).latency
        }
    }

    /// Would logging `addr`'s line push the log past `cap_bytes`?
    /// (`cap_bytes == 0` means unbounded; an already-logged line never
    /// grows the log.)
    #[must_use]
    pub fn would_overflow(&self, addr: Addr, cap_bytes: Addr) -> bool {
        cap_bytes != 0
            && !self.has_logged(line_of(addr))
            && self.write_ptr + RECORD_BYTES > cap_bytes
    }

    /// Number of logged lines this transaction.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is logged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Discard the log (commit).
    pub fn reset(&mut self) {
        self.records.clear();
        self.write_ptr = 0;
        self.level_marks.clear();
    }

    /// Software abort walk: restore every logged line, newest first,
    /// through the memory hierarchy. Returns the total repair latency.
    pub fn unwind(
        &mut self,
        mem: &mut Memory,
        sys: &mut MemorySystem,
        now: Cycle,
        core: CoreId,
    ) -> Cycle {
        self.level_marks.clear();
        self.unwind_from(mem, sys, now, core, 0)
    }

    /// Replay and discard records `[mark..]`, newest first.
    fn unwind_from(
        &mut self,
        mem: &mut Memory,
        sys: &mut MemorySystem,
        now: Cycle,
        core: CoreId,
        mark: usize,
    ) -> Cycle {
        let mut lat = 0;
        for rec in self.records[mark..].iter().rev() {
            // Read the record from the log...
            let rec_start = self.base + self.write_ptr.saturating_sub(RECORD_BYTES);
            lat += Self::charge(sys, now + lat, core, rec_start, AccessKind::Load);
            self.write_ptr = self.write_ptr.saturating_sub(RECORD_BYTES);
            // ...and write the old value back in place.
            lat += Self::charge(sys, now + lat, core, rec.line, AccessKind::Store);
            mem.write_line(rec.line, rec.old);
        }
        self.records.truncate(mark);
        lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suv_types::MachineConfig;

    fn setup() -> (Memory, MemorySystem, UndoLog) {
        (Memory::new(), MemorySystem::new(&MachineConfig::small_test()), UndoLog::new(0))
    }

    #[test]
    fn logs_once_per_line() {
        let (mut mem, mut sys, mut log) = setup();
        mem.write_word(0x100, 7);
        let l1 = log.log_old_value(&mem, &mut sys, 0, 0, 0x100);
        assert!(l1 > 0, "first log write must cost cycles");
        let l2 = log.log_old_value(&mem, &mut sys, 10, 0, 0x108); // same line
        assert_eq!(l2, 0);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn unwind_restores_old_values() {
        let (mut mem, mut sys, mut log) = setup();
        mem.write_word(0x100, 7);
        mem.write_word(0x140, 9);
        log.log_old_value(&mem, &mut sys, 0, 0, 0x100);
        mem.write_word(0x100, 100); // speculative update
        log.log_old_value(&mem, &mut sys, 5, 0, 0x140);
        mem.write_word(0x140, 200);
        let repair = log.unwind(&mut mem, &mut sys, 50, 0);
        assert!(repair > 0, "the walk must take time");
        assert_eq!(mem.read_word(0x100), 7);
        assert_eq!(mem.read_word(0x140), 9);
        assert!(log.is_empty());
    }

    #[test]
    fn repair_time_scales_with_write_set() {
        let (mut mem, mut sys, mut log) = setup();
        // Large write set.
        for i in 0..64u64 {
            log.log_old_value(&mem, &mut sys, i, 0, 0x4000 + i * 64);
            mem.write_word(0x4000 + i * 64, i);
        }
        let big = log.unwind(&mut mem, &mut sys, 1000, 0);
        // Small write set, unwound after the big walk has fully drained
        // (the memory banks hold queuing state, so time must move forward).
        let mut log2 = UndoLog::new(0);
        let later = 1000 + big + 10_000;
        for i in 0..4u64 {
            log2.log_old_value(&mem, &mut sys, later + i, 0, 0x9000 + i * 64);
        }
        let small = log2.unwind(&mut mem, &mut sys, later + 100, 0);
        assert!(big > small * 4, "repair ~ O(write set): {big} vs {small}");
    }

    #[test]
    fn reset_discards_without_restoring() {
        let (mut mem, mut sys, mut log) = setup();
        mem.write_word(0x200, 1);
        log.log_old_value(&mem, &mut sys, 0, 0, 0x200);
        mem.write_word(0x200, 2);
        log.reset();
        assert!(log.is_empty());
        assert_eq!(mem.read_word(0x200), 2, "commit keeps the new value");
    }

    #[test]
    fn log_lives_in_private_region() {
        let log0 = UndoLog::new(0);
        let log1 = UndoLog::new(1);
        assert!(Region::log(0).contains(log0.base));
        assert!(Region::log(1).contains(log1.base));
        assert_ne!(log0.base, log1.base);
    }
}
