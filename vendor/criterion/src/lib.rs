//! Vendored offline subset of the `criterion` crate API.
//!
//! Implements the measurement surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, `Bencher::iter`,
//! `BenchmarkId`) over a simple calibrated timing loop: each benchmark is
//! calibrated to a minimum per-sample wall time, then `sample_size` samples
//! are taken and the median ns/iter is reported. No statistics engine, no
//! HTML reports — just stable relative numbers, which is what the <2%
//! tracing-overhead gate needs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Target wall time for one calibrated sample.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(10);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Upstream parses CLI flags here; the stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _c: self }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Measure `f` with a fixed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least MIN_SAMPLE_TIME.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= MIN_SAMPLE_TIME || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher { iters, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        let mut line = String::new();
        let _ = write!(
            line,
            "{}/{:<40} time: [{} {} {}]  ({} samples x {} iters)",
            self.name,
            id.id,
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi),
            self.sample_size,
            iters
        );
        println!("{line}");
    }

    /// End the group (upstream flushes reports here; the stub prints as it
    /// goes, so this is a no-op).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; the stub ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("stub");
        let mut acc = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
