//! Vendored offline subset of the `rand` crate API.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the handful of `rand` items the simulator uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::random_range`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic across platforms, which is all the simulator
//! requires (the scheduler's bit-reproducibility guarantee depends on the
//! stream being a pure function of the seed, not on matching upstream
//! `rand`'s stream).

/// Seed a generator from a `u64` (subset of the upstream trait).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (subset of upstream
/// `distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (subset of upstream `Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform sample over the whole domain of `T`.
    fn random<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable over their full domain via [`Rng::random`].
pub trait Fill {
    /// Draw one uniformly distributed value.
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Fill for u64 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Fill for bool {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream
    /// `StdRng`; same API, different — but fixed — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
                Self::splitmix(&mut st),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.random_range(1..=16u64);
            assert!((1..=16).contains(&v));
            let w: usize = r.random_range(3..9usize);
            assert!((3..9).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: u64 = a.random();
        let vb: u64 = b.random();
        assert_ne!(va, vb);
    }
}
