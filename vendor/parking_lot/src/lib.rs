//! Vendored offline subset of the `parking_lot` crate API.
//!
//! Only the pieces the simulator uses: a [`Mutex`] whose `lock()` returns a
//! guard directly (no `Result`). Backed by `std::sync::Mutex`; poisoning is
//! swallowed, matching parking_lot's panic-transparent semantics closely
//! enough for the scheduler (a poisoned baton means a worker panicked, and
//! the panic propagates through the scoped-thread join anyway).

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
