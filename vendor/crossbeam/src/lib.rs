//! Vendored offline subset of the `crossbeam` crate API.
//!
//! Provides `crossbeam::channel::bounded` with `Sender`/`Receiver` that are
//! both `Send + Sync` (the property the scheduler relies on: each worker
//! thread calls `recv()` on its own receiver through a shared `&Scheduler`).
//! `std::sync::mpsc::Receiver` is not `Sync`, so this is a small
//! Mutex+Condvar channel rather than a wrapper over std.

/// Multi-producer multi-consumer bounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: usize,
        /// Signalled when the queue gains an item or all senders drop.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or all receivers drop.
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a bounded channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Create a bounded channel with capacity `cap` (min 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while the channel is full. Errors if all
        /// receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.0.cap {
                    st.queue.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).expect("channel lock");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive a value, blocking while the channel is empty. Errors if
        /// the channel is empty and all senders have been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).expect("channel lock");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError};

    #[test]
    fn send_recv_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn baton_handoff_across_threads() {
        let (tx, rx) = bounded(1);
        let (tx2, rx2) = bounded(1);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    assert_eq!(rx.recv(), Ok(i));
                    tx2.send(i).unwrap();
                }
            });
            for i in 0..100 {
                tx.send(i).unwrap();
                assert_eq!(rx2.recv(), Ok(i));
            }
        });
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        std::thread::scope(|s| {
            s.spawn(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap(); // blocks until main recvs
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        });
    }
}
