//! Vendored offline subset of the `proptest` crate API.
//!
//! The build environment has no network access, so the workspace vendors
//! the proptest surface its property tests actually use: the `proptest!`
//! macro, integer-range / tuple / `any` / `prop_oneof` / `prop_map`
//! strategies, `collection::vec`, `array::uniform8`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each test body runs for `cases` deterministic pseudo-random
//! inputs (seeded from the test name, so runs are reproducible). There is
//! no shrinking — a failing case panics with the values bound by the
//! pattern, which the assertion message already carries in these tests.

pub mod strategy {
    //! Strategy trait and combinators.

    /// Deterministic generator driving all strategies (SplitMix64).
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from an arbitrary name; same name => same stream.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64 bits.
        #[allow(clippy::should_implement_trait)] // mirrors upstream's name
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// A source of values for one test argument.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Type-erase (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produce a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the already-boxed alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next() % self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next() as $t;
                    }
                    lo + (rng.next() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuples {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuples! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draw a uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for the full domain of `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, TestRng};

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` of values from `elem`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next() % span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::{Strategy, TestRng};

    /// Result of [`uniform8`].
    pub struct Uniform8<S>(S);

    /// `[T; 8]` with each element drawn from `elem`.
    pub fn uniform8<S: Strategy>(elem: S) -> Uniform8<S> {
        Uniform8(elem)
    }

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; 8] {
            core::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while still
            // exercising the invariants.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of test functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::strategy::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

/// Property assertion (panics on failure; no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..=4, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            let _ = b;
        }

        #[test]
        fn vec_and_tuple(ops in crate::collection::vec((0u64..8, any::<bool>()), 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for (v, _) in ops {
                prop_assert!(v < 8);
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u64..4).prop_map(|x| x * 2),
            (0u64..4).prop_map(|x| x * 2 + 1),
        ]) {
            prop_assert!(v < 8);
        }

        #[test]
        fn uniform8_shape(a in crate::array::uniform8(any::<u64>())) {
            prop_assert_eq!(a.len(), 8);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::{Strategy, TestRng};
        let mut r1 = TestRng::from_name("x");
        let mut r2 = TestRng::from_name("x");
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
