//! Quickstart: simulate one STAMP application under two HTM schemes and
//! compare their execution-time breakdowns.
//!
//! ```sh
//! cargo run --release -p suv --example quickstart
//! ```

use suv::prelude::*;

fn main() {
    // The paper's 16-core Table III machine. `small_test()` gives a
    // 4-core machine for quick experiments.
    let cfg = MachineConfig::default();

    println!("Simulating `genome` under LogTM-SE and SUV-TM on {} cores...\n", cfg.n_cores);

    let mut results = Vec::new();
    for scheme in [SchemeKind::LogTmSe, SchemeKind::SuvTm] {
        let mut workload = by_name("genome", SuiteScale::Tiny).expect("known workload");
        let r = run_workload(&cfg, scheme, workload.as_mut());
        println!(
            "{:<10} {:>9} cycles  {:>6} commits  {:>6} aborts  abort ratio {:>5.1}%",
            r.scheme.name(),
            r.stats.cycles,
            r.stats.tx.commits,
            r.stats.tx.aborts,
            100.0 * r.stats.tx.abort_ratio(),
        );
        let b = r.stats.total_breakdown();
        let total = b.total().max(1);
        for k in BreakdownKind::ALL {
            let pct = 100.0 * b.get(k) as f64 / total as f64;
            if pct >= 0.05 {
                println!("    {:<10} {:>5.1}%", k.label(), pct);
            }
        }
        results.push(r);
    }

    let speedup = results[1].speedup_over(&results[0]);
    println!("\nSUV-TM speedup over LogTM-SE: {speedup:.2}x");
    println!(
        "SUV redirect activity: {} entries added, {} redirected back, L1-table miss rate {:.2}%",
        results[1].stats.redirect.entries_added,
        results[1].stats.redirect.entries_redirected_back,
        100.0 * results[1].stats.redirect.l1_miss_rate(),
    );
}
