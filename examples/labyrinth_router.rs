//! Writing your own workload against the public API: a maze router.
//!
//! This example builds a custom [`Workload`] from scratch — a 2-D maze
//! with walls, where every thread routes wires between terminals inside
//! transactions — and runs it under LogTM-SE and SUV-TM. It is the
//! template to copy when porting a new transactional application onto the
//! simulator.
//!
//! ```sh
//! cargo run --release -p suv --example labyrinth_router
//! ```

use suv::prelude::*;
use suv::types::Addr;

const W: u64 = 24;
const H: u64 = 24;
const WIRES_PER_THREAD: u64 = 4;

/// A 2-D maze: one word per cell; 0 = free, 1 = wall, >=2 = wire id.
struct MazeRouter {
    grid: Addr,
    /// Per-thread routed-wire counters (a line apart).
    routed: Addr,
    threads: usize,
}

impl MazeRouter {
    fn cell(&self, x: u64, y: u64) -> Addr {
        self.grid + (y * W + x) * 8
    }

    /// Deterministic terminal pair for a wire.
    fn terminals(tid: usize, wire: u64) -> ((u64, u64), (u64, u64)) {
        let h = suv::stamp::ds::mix64((tid as u64) << 8 | wire);
        let src = (h % (W / 2), (h >> 8) % H);
        let dst = (W / 2 + (h >> 16) % (W / 2), (h >> 24) % H);
        (src, dst)
    }
}

impl Workload for MazeRouter {
    fn name(&self) -> &'static str {
        "maze-router"
    }

    fn setup(&mut self, ctx: &mut SetupCtx<'_>) {
        self.threads = ctx.n_cores();
        self.grid = ctx.alloc_lines(W * H * 8);
        self.routed = ctx.alloc_lines(self.threads as u64 * 64);
        // A few vertical wall segments with gaps.
        for wx in [6u64, 12, 18] {
            for y in 0..H {
                if y % 5 != 0 {
                    ctx.poke(self.grid + (y * W + wx) * 8, 1);
                }
            }
        }
    }

    fn run(&self, tid: usize, ctx: &mut ThreadCtx) {
        let mut routed = 0u64;
        for wire in 0..WIRES_PER_THREAD {
            let ((sx, sy), (dx, dy)) = Self::terminals(tid, wire);
            let id = 2 + (tid as u64) * WIRES_PER_THREAD + wire;
            let mut ok = false;
            ctx.txn(TxSite(1), |tx| {
                ok = false;
                // Walk x then y, detouring vertically through wall gaps.
                let mut cells = Vec::new();
                let (mut x, mut y) = (sx, sy);
                cells.push((x, y));
                let mut guard = 0;
                while (x, y) != (dx, dy) {
                    guard += 1;
                    if guard > (W * H) as usize {
                        return Ok(()); // unroutable; commit empty
                    }
                    let nx = match x.cmp(&dx) {
                        std::cmp::Ordering::Less => x + 1,
                        std::cmp::Ordering::Greater => x - 1,
                        std::cmp::Ordering::Equal => x,
                    };
                    let step = if nx != x && tx.load(self.cell(nx, y))? == 1 {
                        // Wall ahead: slide along it towards a gap.
                        if y % 5 < 3 && y > 0 {
                            (x, y - 1)
                        } else if y + 1 < H {
                            (x, y + 1)
                        } else {
                            (x, y - 1)
                        }
                    } else if nx != x {
                        (nx, y)
                    } else if y < dy {
                        (x, y + 1)
                    } else {
                        (x, y - 1)
                    };
                    x = step.0;
                    y = step.1;
                    cells.push((x, y));
                }
                // Claim: every cell must be free (or our own revisit).
                for &(cx, cy) in &cells {
                    let v = tx.load(self.cell(cx, cy))?;
                    if v != 0 && v != id {
                        return Ok(()); // blocked by another wire
                    }
                }
                for &(cx, cy) in &cells {
                    tx.store(self.cell(cx, cy), id)?;
                }
                ok = true;
                Ok(())
            });
            routed += u64::from(ok);
            ctx.work(60);
        }
        ctx.store(self.routed + tid as u64 * 64, routed);
        ctx.barrier();
    }

    fn verify(&self, ctx: &mut SetupCtx<'_>) {
        // No cell belongs to two wires and no wall was overwritten.
        for wx in [6u64, 12, 18] {
            for y in 0..H {
                if y % 5 != 0 {
                    assert_eq!(ctx.peek(self.cell(wx, y)), 1, "wall destroyed at ({wx},{y})");
                }
            }
        }
    }
}

fn main() {
    let cfg = MachineConfig::small_test();
    println!("Custom maze router, {}x{} grid, {} threads:\n", W, H, cfg.n_cores);
    for scheme in [SchemeKind::LogTmSe, SchemeKind::SuvTm] {
        let mut w = MazeRouter { grid: 0, routed: 0, threads: 0 };
        let r = run_workload(&cfg, scheme, &mut w);
        println!(
            "{:<10} {:>8} cycles, {} commits, {} aborts, {} NACKs",
            r.scheme.name(),
            r.stats.cycles,
            r.stats.tx.commits,
            r.stats.tx.aborts,
            r.stats.tx.nacks_received,
        );
    }
    println!("\nSee the source of this example for the Workload template.");
}
