//! The Figure 1 pathologies, reproduced on the raw machine API.
//!
//! Three scenarios on a 4-core machine:
//!
//! * **repair pathology** (optimistic schemes): a transaction with a big
//!   write set aborts; while it replays its undo log, a neighbour's access
//!   to the shared data keeps getting NACKed — the isolation window
//!   outlives the transaction.
//! * **merge pathology** (pessimistic schemes): a lazy transaction with a
//!   big write set commits; while the write buffer drains, the neighbour
//!   is NACKed just the same.
//! * **SUV**: the same abort and the same commit are O(1) flashes, so the
//!   neighbour gets through almost immediately.
//!
//! ```sh
//! cargo run --release -p suv --example pathology
//! ```

use suv::htm::machine::{Access, CommitOutcome, HtmMachine};
use suv::prelude::*;
use suv::sim::build_vm;

/// Lines the victim transaction writes before ending.
const WRITE_SET: u64 = 64;

/// Measure how long core 1 stays blocked on a line after core 0's
/// transaction ends (by abort or commit).
fn blocked_cycles(scheme: SchemeKind, commit: bool) -> (u64, u64) {
    let cfg = MachineConfig::small_test();
    let mut m = HtmMachine::new(&cfg, build_vm(scheme, &cfg));
    for i in 0..WRITE_SET {
        m.poke(0x1_0000 + i * 64, i);
    }
    // Core 0: a big transaction over WRITE_SET lines.
    let mut t0 = 0;
    t0 += m.begin_tx(t0, 0, TxSite(1));
    for i in 0..WRITE_SET {
        match m.tx_store(t0, 0, 0x1_0000 + i * 64, 999) {
            Access::Done { latency, .. } => t0 += latency,
            other => panic!("unexpected {other:?}"),
        }
    }
    // End it: the isolation window's length is the scheme's signature.
    let window = if commit {
        match m.commit_tx(t0, 0) {
            CommitOutcome::Committed { latency, .. } => latency,
            other => panic!("unexpected {other:?}"),
        }
    } else {
        m.abort_tx(t0, 0)
    };
    // Core 1 tries to read one of those lines the moment the end begins,
    // retrying every cycle until it succeeds.
    let mut t1 = t0 + 1;
    t1 += m.begin_tx(t1, 1, TxSite(2));
    let start = t1;
    loop {
        match m.tx_load(t1, 1, 0x1_0000) {
            Access::Done { latency, .. } => {
                t1 += latency;
                break;
            }
            Access::Nacked { latency, .. } => t1 += latency.max(1),
            Access::MustAbort { .. } | Access::Overflow { .. } => unreachable!(),
        }
    }
    (window, t1 - start)
}

fn main() {
    println!("Figure 1 pathologies: isolation windows after a {WRITE_SET}-line transaction\n");
    println!("{:<12} {:>16} {:>22}", "scheme", "abort window", "neighbour blocked");
    for scheme in [SchemeKind::LogTmSe, SchemeKind::FasTm, SchemeKind::SuvTm] {
        let (window, blocked) = blocked_cycles(scheme, false);
        println!("{:<12} {:>14}cy {:>20}cy", scheme.name(), window, blocked);
    }
    println!("\n{:<12} {:>16} {:>22}", "scheme", "commit window", "neighbour blocked");
    for scheme in [SchemeKind::Lazy, SchemeKind::SuvTm] {
        let (window, blocked) = blocked_cycles(scheme, true);
        println!("{:<12} {:>14}cy {:>20}cy", scheme.name(), window, blocked);
    }
    println!("\nLogTM-SE's repair walk and the lazy scheme's merge both stretch the");
    println!("window with the write-set size; SUV's flash transitions do not.");
}
