//! Run one STAMP application under every implemented HTM scheme and
//! print a comparison table.
//!
//! ```sh
//! cargo run --release -p suv --example scheme_shootout [app]
//! ```
//!
//! `app` defaults to `intruder`; any Table IV name works.

use suv::prelude::*;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "intruder".to_string());
    let cfg = MachineConfig::small_test();
    println!("`{app}` on a {}-core machine, all schemes:\n", cfg.n_cores);
    println!(
        "{:<11} {:>10} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "scheme", "cycles", "commits", "aborts", "speedup", "stalled%", "aborting%"
    );
    let mut baseline = None;
    for scheme in [
        SchemeKind::LogTmSe,
        SchemeKind::FasTm,
        SchemeKind::Lazy,
        SchemeKind::DynTm,
        SchemeKind::SuvTm,
        SchemeKind::DynTmSuv,
    ] {
        let mut w = by_name(&app, SuiteScale::Tiny)
            .unwrap_or_else(|| panic!("unknown workload {app}; use a Table IV name"));
        let r = run_workload(&cfg, scheme, w.as_mut());
        let base = *baseline.get_or_insert(r.stats.cycles);
        let b = r.stats.total_breakdown();
        let total = b.total().max(1) as f64;
        println!(
            "{:<11} {:>10} {:>8} {:>8} {:>7.2}x {:>8.1}% {:>9.2}%",
            r.scheme.name(),
            r.stats.cycles,
            r.stats.tx.commits,
            r.stats.tx.aborts,
            base as f64 / r.stats.cycles as f64,
            100.0 * b.stalled as f64 / total,
            100.0 * b.aborting as f64 / total,
        );
    }
    println!("\n(speedup is relative to LogTM-SE; every run passes the workload's");
    println!("own functional verification before reporting)");
}
